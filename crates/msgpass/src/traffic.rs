//! Per-rank, per-phase traffic accounting.
//!
//! Algorithms label their stages with [`crate::RankCtx::set_phase`]
//! ("replicate_ab", "cannon_shift", "reduce_c", "redist", …); every
//! point-to-point send is attributed to the sender's current phase and every
//! matched receive to the receiver's. On top of the per-phase totals the
//! accountant keeps a rank×rank [`CommMatrix`], log2 message-size
//! [`SizeHistogram`]s keyed by phase and by the collective algorithm that
//! was actually executed, and per-phase *wait* seconds (wall time blocked in
//! `recv` — which covers `sendrecv` and barriers, since both block only in
//! their receive halves). The resulting [`TrafficReport`] is the measured
//! counterpart of the analytic schedule evaluator in the `netmodel` crate.
//!
//! Byte and message counts (totals, matrix cells, histogram buckets) are
//! deterministic functions of the algorithm and problem; wall/wait seconds
//! are not. The `report-gate` CI mode relies on exactly this split.

use crate::lock_mutex;
use crate::metrics::{CellCounts, CommMatrix, SizeHistogram};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Bytes and message counts for one phase on one rank, both directions.
///
/// `bytes`/`msgs` count what the rank *sent* (the paper's per-rank
/// communication size `Q` is a send-side quantity, and the
/// model-vs-measured tests compare against it); `recv_bytes`/`recv_msgs`
/// count what the rank *matched* in `recv`, attributed to the receiver's
/// current phase — so a broadcast leaf no longer shows zero activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// Payload bytes sent.
    pub bytes: u64,
    /// Messages sent.
    pub msgs: u64,
    /// Payload bytes received (matched).
    pub recv_bytes: u64,
    /// Messages received (matched).
    pub recv_msgs: u64,
}

impl PhaseCounts {
    /// Accumulate another count into this one.
    pub fn add(&mut self, other: PhaseCounts) {
        self.bytes += other.bytes;
        self.msgs += other.msgs;
        self.recv_bytes += other.recv_bytes;
        self.recv_msgs += other.recv_msgs;
    }
}

/// The mutable accumulator state for one rank. Only the owning rank thread
/// writes it during a run; the world reads it once after the threads join.
#[derive(Default)]
pub(crate) struct RankStats {
    pub(crate) by_phase: BTreeMap<String, PhaseCounts>,
    /// `sent_to[dst]`: this rank's send-side matrix row.
    pub(crate) sent_to: Vec<CellCounts>,
    /// `recv_from[src]`: this rank's recv-side matrix row.
    pub(crate) recv_from: Vec<CellCounts>,
    /// Send-side size histograms keyed by the sender's phase.
    pub(crate) hist_by_phase: BTreeMap<String, SizeHistogram>,
    /// Send-side size histograms keyed by the collective algorithm actually
    /// running ("ring_allgatherv", …); bare point-to-point sends land under
    /// `"p2p"`.
    pub(crate) hist_by_algo: BTreeMap<String, SizeHistogram>,
    /// Seconds blocked inside `recv` per receiver phase.
    pub(crate) wait_by_phase: BTreeMap<String, f64>,
}

/// Accumulator owned by the fabric, one per rank. Writes come from the
/// owning thread only, but the final report is read after the threads join,
/// so a mutex (uncontended in practice) keeps this simple and safe.
pub(crate) struct RankTraffic {
    pub(crate) stats: Mutex<RankStats>,
}

impl RankTraffic {
    pub(crate) fn new(world_size: usize) -> RankTraffic {
        RankTraffic {
            stats: Mutex::new(RankStats {
                sent_to: vec![CellCounts::default(); world_size],
                recv_from: vec![CellCounts::default(); world_size],
                ..RankStats::default()
            }),
        }
    }

    /// Records one outgoing message: phase totals, the matrix row, and both
    /// histogram keyings. `algo` is the collective algorithm in scope, or
    /// `None` for a bare point-to-point send.
    pub(crate) fn record_send(
        &self,
        phase: &str,
        algo: Option<&'static str>,
        dst_world: usize,
        bytes: u64,
    ) {
        let mut st = lock_mutex(&self.stats);
        let e = st.by_phase.entry(phase.to_owned()).or_default();
        e.bytes += bytes;
        e.msgs += 1;
        st.sent_to[dst_world].bytes += bytes;
        st.sent_to[dst_world].msgs += 1;
        st.hist_by_phase
            .entry(phase.to_owned())
            .or_default()
            .record(bytes);
        st.hist_by_algo
            .entry(algo.unwrap_or("p2p").to_owned())
            .or_default()
            .record(bytes);
    }

    /// Records one matched receive: phase totals, the matrix row, and the
    /// seconds this `recv` call spent blocked waiting for the fabric.
    pub(crate) fn record_recv(&self, phase: &str, src_world: usize, bytes: u64, wait_secs: f64) {
        let mut st = lock_mutex(&self.stats);
        let e = st.by_phase.entry(phase.to_owned()).or_default();
        e.recv_bytes += bytes;
        e.recv_msgs += 1;
        st.recv_from[src_world].bytes += bytes;
        st.recv_from[src_world].msgs += 1;
        if wait_secs > 0.0 {
            *st.wait_by_phase.entry(phase.to_owned()).or_insert(0.0) += wait_secs;
        }
    }
}

/// Traffic measured during one [`crate::World::run`], indexed by
/// `[rank][phase]`, plus the run-wide communication matrix, size
/// histograms, and wait attribution.
#[derive(Clone, Debug, Default)]
pub struct TrafficReport {
    /// `per_rank[r]` maps phase name → counts for world rank `r`.
    pub per_rank: Vec<BTreeMap<String, PhaseCounts>>,
    /// `secs_per_rank[r]` maps phase name → wall seconds spent in the phase
    /// on rank `r` (communication *and* computation while the phase label
    /// was active).
    pub secs_per_rank: Vec<BTreeMap<String, f64>>,
    /// `wait_per_rank[r]` maps phase name → seconds rank `r` spent blocked
    /// inside `recv` while that phase was active. Always ≤ the phase's
    /// wall seconds; the remainder is compute plus non-blocking overhead.
    pub wait_per_rank: Vec<BTreeMap<String, f64>>,
    /// The rank×rank communication matrix (send- and recv-side).
    pub matrix: CommMatrix,
    /// Message-size histograms by sender phase, aggregated over ranks.
    pub hist_by_phase: BTreeMap<String, SizeHistogram>,
    /// Message-size histograms by collective algorithm actually executed
    /// (`"p2p"` for bare sends), aggregated over ranks.
    pub hist_by_algo: BTreeMap<String, SizeHistogram>,
}

impl TrafficReport {
    /// Total counts for one rank across all phases.
    pub fn rank_total(&self, rank: usize) -> PhaseCounts {
        let mut t = PhaseCounts::default();
        for c in self.per_rank[rank].values() {
            t.add(*c);
        }
        t
    }

    /// The maximum per-rank sent-byte count — the paper's communication
    /// size `Q` (§III-D), in bytes.
    pub fn max_rank_bytes(&self) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.rank_total(r).bytes)
            .max()
            .unwrap_or(0)
    }

    /// The maximum per-rank sent-message count — the paper's latency `L`.
    pub fn max_rank_msgs(&self) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.rank_total(r).msgs)
            .max()
            .unwrap_or(0)
    }

    /// Sum of sent bytes over all ranks (total data exchanged).
    pub fn total_bytes(&self) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.rank_total(r).bytes)
            .sum()
    }

    /// Counts for a single phase on one rank (zero if the phase never ran).
    pub fn phase(&self, rank: usize, phase: &str) -> PhaseCounts {
        self.per_rank[rank].get(phase).copied().unwrap_or_default()
    }

    /// Sums one phase across all ranks.
    pub fn phase_total(&self, phase: &str) -> PhaseCounts {
        let mut t = PhaseCounts::default();
        for r in 0..self.per_rank.len() {
            t.add(self.phase(r, phase));
        }
        t
    }

    /// Maximum over ranks of the bytes *sent* in one phase — the
    /// maximally-loaded-rank volume the §III-D cost model predicts.
    pub fn phase_bytes_max(&self, phase: &str) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.phase(r, phase).bytes)
            .max()
            .unwrap_or(0)
    }

    /// Maximum over ranks of the messages *sent* in one phase — the
    /// maximally-loaded-rank count behind the paper's latency measure `L`.
    pub fn phase_msgs_max(&self, phase: &str) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.phase(r, phase).msgs)
            .max()
            .unwrap_or(0)
    }

    /// Wall seconds one rank spent in one phase (0 if never entered).
    pub fn phase_secs(&self, rank: usize, phase: &str) -> f64 {
        self.secs_per_rank
            .get(rank)
            .and_then(|m| m.get(phase))
            .copied()
            .unwrap_or(0.0)
    }

    /// Maximum over ranks of the wall seconds spent in one phase — the
    /// critical-path estimate the artifact's per-phase report prints.
    pub fn phase_secs_max(&self, phase: &str) -> f64 {
        (0..self.secs_per_rank.len())
            .map(|r| self.phase_secs(r, phase))
            .fold(0.0, f64::max)
    }

    /// Seconds one rank spent blocked in `recv` during one phase.
    pub fn wait_secs(&self, rank: usize, phase: &str) -> f64 {
        self.wait_per_rank
            .get(rank)
            .and_then(|m| m.get(phase))
            .copied()
            .unwrap_or(0.0)
    }

    /// Maximum over ranks of [`TrafficReport::wait_secs`].
    pub fn wait_secs_max(&self, phase: &str) -> f64 {
        (0..self.wait_per_rank.len())
            .map(|r| self.wait_secs(r, phase))
            .fold(0.0, f64::max)
    }

    /// All phase labels seen on any rank, sorted.
    pub fn phases(&self) -> Vec<String> {
        let mut set: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for m in &self.per_rank {
            set.extend(m.keys().cloned());
        }
        for m in &self.secs_per_rank {
            set.extend(m.keys().cloned());
        }
        set.into_iter().collect()
    }

    /// Cross-checks the redundant views of the same traffic against each
    /// other: matrix row totals vs per-phase totals (both directions) and
    /// histogram totals vs message counts. Returns the first discrepancy.
    pub fn check_consistency(&self) -> Result<(), String> {
        let p = self.per_rank.len();
        if self.matrix.ranks() != p {
            return Err(format!(
                "matrix is {}×{0} but the report has {p} ranks",
                self.matrix.ranks()
            ));
        }
        for r in 0..p {
            let t = self.rank_total(r);
            let row = self.matrix.send_row_total(r);
            if (row.bytes, row.msgs) != (t.bytes, t.msgs) {
                return Err(format!(
                    "rank {r}: matrix send row {row:?} != phase send totals ({}, {})",
                    t.bytes, t.msgs
                ));
            }
            let rrow = self.matrix.recv_row_total(r);
            if (rrow.bytes, rrow.msgs) != (t.recv_bytes, t.recv_msgs) {
                return Err(format!(
                    "rank {r}: matrix recv row {rrow:?} != phase recv totals ({}, {})",
                    t.recv_bytes, t.recv_msgs
                ));
            }
        }
        for (phase, h) in &self.hist_by_phase {
            let t = self.phase_total(phase);
            if h.msgs != t.msgs || h.bytes != t.bytes {
                return Err(format!(
                    "phase {phase:?}: histogram ({} msgs, {} B) != totals ({} msgs, {} B)",
                    h.msgs, h.bytes, t.msgs, t.bytes
                ));
            }
        }
        let algo_msgs: u64 = self.hist_by_algo.values().map(|h| h.msgs).sum();
        let total_msgs: u64 = (0..p).map(|r| self.rank_total(r).msgs).sum();
        if algo_msgs != total_msgs {
            return Err(format!(
                "algo histograms count {algo_msgs} msgs but the run sent {total_msgs}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let rt = RankTraffic::new(2);
        rt.record_send("a", None, 1, 100);
        rt.record_send("a", Some("ring_allgatherv"), 1, 50);
        rt.record_send("b", None, 0, 1);
        rt.record_recv("a", 1, 30, 0.25);
        let st = crate::lock_mutex(&rt.stats);
        assert_eq!(
            st.by_phase["a"],
            PhaseCounts {
                bytes: 150,
                msgs: 2,
                recv_bytes: 30,
                recv_msgs: 1,
            }
        );
        assert_eq!(st.by_phase["b"].bytes, 1);
        assert_eq!(
            st.sent_to[1],
            CellCounts {
                bytes: 150,
                msgs: 2
            }
        );
        assert_eq!(st.recv_from[1], CellCounts { bytes: 30, msgs: 1 });
        assert_eq!(st.hist_by_phase["a"].msgs, 2);
        assert_eq!(st.hist_by_algo["p2p"].msgs, 2);
        assert_eq!(st.hist_by_algo["ring_allgatherv"].msgs, 1);
        assert_eq!(st.wait_by_phase["a"], 0.25);
        let map = st.by_phase.clone();
        drop(st);

        let report = TrafficReport {
            per_rank: vec![map, BTreeMap::new()],
            secs_per_rank: vec![BTreeMap::new(), BTreeMap::new()],
            wait_per_rank: vec![BTreeMap::new(), BTreeMap::new()],
            ..TrafficReport::default()
        };
        assert_eq!(report.rank_total(0).bytes, 151);
        assert_eq!(report.rank_total(0).recv_msgs, 1);
        assert_eq!(report.rank_total(1).msgs, 0);
        assert_eq!(report.max_rank_bytes(), 151);
        assert_eq!(report.max_rank_msgs(), 3);
        assert_eq!(report.total_bytes(), 151);
        assert_eq!(report.phase(0, "a").msgs, 2);
        assert_eq!(report.phase(0, "missing"), PhaseCounts::default());
        assert_eq!(report.phase_total("a").bytes, 150);
        assert_eq!(report.phase_total("a").recv_bytes, 30);
    }

    #[test]
    fn consistency_check_catches_skew() {
        // An empty report is trivially consistent.
        let mut report = TrafficReport {
            per_rank: vec![BTreeMap::new()],
            secs_per_rank: vec![BTreeMap::new()],
            wait_per_rank: vec![BTreeMap::new()],
            matrix: CommMatrix::new(1),
            ..TrafficReport::default()
        };
        assert!(report.check_consistency().is_ok());
        // A phase total with no matching matrix row is not.
        report.per_rank[0].insert(
            "x".to_owned(),
            PhaseCounts {
                bytes: 8,
                msgs: 1,
                ..PhaseCounts::default()
            },
        );
        assert!(report.check_consistency().is_err());
    }
}
