//! Seeded random matrix generation.
//!
//! The paper's experiments "use randomly generated general non-zero
//! matrices" (artifact appendix §2.5). Everything here is deterministic in
//! the seed so that distributed tests can regenerate the *same* global
//! matrix independently on every rank.

use crate::mat::Mat;
use crate::part::Rect;
use crate::scalar::Scalar;

/// A SplitMix64 stream: small, fast, and plenty for test matrices. Using
/// our own generator (instead of an external crate) keeps the workspace
/// building with no network access.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `(-1, 1)` (the top 53 bits mapped to `[0,1)`, affinely
    /// shifted).
    fn open_unit_signed(&mut self) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        2.0 * unit - 1.0
    }
}

/// Fills `m` with uniform values in `(-1, 1)`, deterministically in `seed`.
pub fn fill_random<T: Scalar>(m: &mut Mat<T>, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for v in m.as_mut_slice() {
        *v = T::from_f64(rng.open_unit_signed());
    }
}

/// A fresh `rows × cols` matrix filled by [`fill_random`].
pub fn random_mat<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Mat<T> {
    let mut m = Mat::zeros(rows, cols);
    fill_random(&mut m, seed);
    m
}

/// The value a seeded global matrix has at `(i, j)` — *independent of any
/// partitioning*. A hash of `(seed, i, j)` is mapped into `(-1, 1)`.
///
/// This is how ranks generate their local pieces of a logically shared
/// global matrix without ever materializing it: rank r fills its owned
/// region by evaluating `global_entry` pointwise, and a verifier can
/// recompute any entry.
pub fn global_entry<T: Scalar>(seed: u64, i: usize, j: usize) -> T {
    // SplitMix64-style mix of the coordinates; cheap and statistically fine
    // for generating test matrices.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(1 + i as u64));
    z ^= (j as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // map the top 53 bits to (0,1), then to (-1,1)
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    T::from_f64(2.0 * unit - 1.0)
}

/// Materializes the `rect` region of the seeded global matrix defined by
/// [`global_entry`].
pub fn global_block<T: Scalar>(seed: u64, rect: Rect) -> Mat<T> {
    Mat::from_fn(rect.rows, rect.cols, |i, j| {
        global_entry(seed, rect.row0 + i, rect.col0 + j)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_deterministic() {
        let a = random_mat::<f64>(10, 10, 42);
        let b = random_mat::<f64>(10, 10, 42);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = random_mat::<f64>(10, 10, 43);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn values_in_open_interval() {
        let a = random_mat::<f64>(50, 50, 7);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn global_entry_partition_independent() {
        let full = global_block::<f64>(99, Rect::new(0, 0, 8, 8));
        let piece = global_block::<f64>(99, Rect::new(3, 2, 4, 5));
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(piece.get(i, j), full.get(3 + i, 2 + j));
            }
        }
    }

    #[test]
    fn global_entry_range_and_spread() {
        let mut distinct = std::collections::HashSet::new();
        for i in 0..32usize {
            for j in 0..32usize {
                let v: f64 = global_entry(1, i, j);
                assert!((-1.0..1.0).contains(&v));
                distinct.insert(v.to_bits());
            }
        }
        // A decent mixer should essentially never collide on 1024 cells.
        assert!(distinct.len() > 1000, "only {} distinct", distinct.len());
    }
}
