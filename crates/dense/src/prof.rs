//! Kernel-level profiling for the blocked GEMM: per-thread span recording,
//! pool telemetry, and roofline attribution.
//!
//! The message-passing side of this repository can attribute every byte and
//! wait-second (`msgpass::traffic`, `msgpass::trace`); this module gives the
//! compute side the same treatment. When profiling is on, every
//! [`gemm`](crate::gemm::gemm) call records *where its thread-seconds went*:
//!
//! * **exact aggregates** — the pack/compute phase closures bump per-call
//!   atomic nanosecond counters, folded at call end into the capturing
//!   thread's totals. `pack_a + pack_b + compute + idle ≡ width · wall` by
//!   construction (idle is derived as the remainder, clamped at zero), so
//!   the attribution always reconciles with the call's wall time;
//! * **per-thread spans** — each phase interval is also written into a
//!   fixed-capacity lock-free ring buffer owned by the recording thread
//!   (one cache-line-padded slot per thread, [`RING_CAPACITY`] records,
//!   *oldest records overwritten first*). Spans are best-effort: the
//!   profile's `coverage` states what fraction of the exact busy seconds
//!   the retained spans represent, and `dropped_spans` counts the rest.
//!   Spans feed the merged Perfetto trace
//!   (`msgpass::Timeline::to_chrome_json_with_kernel`) and the per-thread
//!   imbalance estimate;
//! * **pool telemetry** — queue-depth high-water at submit, submit→wake
//!   latency per helper job, jobs executed per worker, and the
//!   `parallel_chunks` region count, all attributed to the capture whose
//!   GEMM submitted the work.
//!
//! # Enabling
//!
//! Profiling is off by default and costs one relaxed atomic load per GEMM
//! call (plus one per parallel region) when disabled — no timestamps, no
//! ring writes, no allocation. Turn it on with the `DENSE_GEMM_PROF`
//! environment variable (any value but `0`) or [`set_gemm_profiling`]; the
//! explicit setter wins over the environment.
//!
//! # Captures
//!
//! Recording is scoped by *captures*: a rank thread (or a bench) calls
//! [`begin_capture`], runs its GEMMs, and [`end_capture`] returns the
//! aggregated [`KernelProfile`]. Every span and counter is tagged with the
//! capture id, so concurrent ranks profiling on the shared pool do not mix.
//! With profiling enabled but no active capture on the calling thread, the
//! kernel records nothing.
//!
//! # Roofline
//!
//! The profile compares achieved arithmetic throughput
//! (`flops / compute_secs`, a *per-busy-core* rate) against
//! [`tune::probed_peak_gflops`](crate::tune::probed_peak_gflops) — the
//! measured single-core rate of *the dispatched* `mr×nr` register
//! microkernel on L1-resident panels (the profile records which kernel ran,
//! and the peak is probed per kernel, so roofline percentages stay ≤ 100%
//! whichever kernel the dispatcher picked) — and measured pack traffic
//! against the analytic `O(MC·KC + KC·NC)` packed-working-set bound of the
//! five-loop design.

use crate::kernel::{self, KernelKind};
use crate::tune;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::time::Instant;

/// Span records each thread's ring can hold; older records are overwritten
/// (the exact aggregate counters are unaffected by truncation).
pub const RING_CAPACITY: usize = 1024;

/// Threads that can ever own a profiling slot (workers + submitters). A
/// thread past the cap still contributes to the exact aggregates; only its
/// spans are dropped (and counted in [`KernelProfile::dropped_spans`]).
pub const MAX_PROFILED_THREADS: usize = 320;

/// Words per ring record: tag (`capture_id << 8 | phase`), t0, t1.
const REC_WORDS: usize = 3;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let on = std::env::var("DENSE_GEMM_PROF").is_ok_and(|v| !v.is_empty() && v != "0");
        if on {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Whether kernel profiling is currently enabled (the disabled-path guard:
/// a completed-`Once` fast path plus one relaxed load).
#[inline]
pub fn profiling_enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables kernel profiling process-wide. Overrides
/// `DENSE_GEMM_PROF`.
pub fn set_gemm_profiling(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide instant all span timestamps are nanoseconds since.
/// Exposed so `msgpass` can rebase kernel spans onto a run's own epoch when
/// merging them into the Chrome trace.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since [`epoch`].
#[inline]
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The kernel phase a span or counter is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanPhase {
    /// Per-thread packing of an `MC×KC` A block (loop 3 prologue).
    PackA = 1,
    /// Cooperative packing of a `KC×NC` B slab (loop 4 prologue).
    PackB = 2,
    /// Macro-tile compute: the `MR×NR` microkernel over one C band.
    Compute = 3,
    /// Pool gap: from job enqueue to the worker popping it.
    Wake = 4,
    /// The submitting thread's wait for region completion.
    Barrier = 5,
}

impl SpanPhase {
    /// Stable lowercase name (used as the Chrome-trace event name).
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::PackA => "pack_a",
            SpanPhase::PackB => "pack_b",
            SpanPhase::Compute => "compute",
            SpanPhase::Wake => "wake",
            SpanPhase::Barrier => "barrier",
        }
    }

    /// Whether the phase counts toward busy time (pack + compute, as
    /// opposed to the wake/barrier scheduling gaps).
    pub fn is_busy(self) -> bool {
        matches!(
            self,
            SpanPhase::PackA | SpanPhase::PackB | SpanPhase::Compute
        )
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(SpanPhase::PackA),
            2 => Some(SpanPhase::PackB),
            3 => Some(SpanPhase::Compute),
            4 => Some(SpanPhase::Wake),
            5 => Some(SpanPhase::Barrier),
            _ => None,
        }
    }
}

/// One harvested span: `[t0_ns, t1_ns]` since [`epoch`], recorded by the
/// thread owning profiling slot `thread`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfSpan {
    /// Process-wide profiling slot of the recording thread.
    pub thread: usize,
    /// Which kernel phase the interval covers.
    pub phase: SpanPhase,
    /// Start, nanoseconds since [`epoch`].
    pub t0_ns: u64,
    /// End, nanoseconds since [`epoch`].
    pub t1_ns: u64,
}

/// One thread's profiling slot: padded to a cache line so the hot `seq` /
/// `jobs` counters of adjacent workers never share one.
#[repr(align(64))]
struct Slot {
    /// Records written by the owning thread (monotone; the ring index is
    /// `seq % RING_CAPACITY`, so old records are overwritten first).
    seq: AtomicU64,
    /// Pool jobs executed by the owning thread (worker telemetry).
    jobs: AtomicU64,
    /// The ring storage, allocated on the slot's first record.
    ring: OnceLock<Box<[AtomicU64]>>,
}

fn slots() -> &'static [Slot] {
    static SLOTS: OnceLock<Vec<Slot>> = OnceLock::new();
    SLOTS.get_or_init(|| {
        (0..MAX_PROFILED_THREADS)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                jobs: AtomicU64::new(0),
                ring: OnceLock::new(),
            })
            .collect()
    })
}

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// This thread's slot index; `usize::MAX` = not yet assigned.
    static MY_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// This thread's profiling slot, assigned on first use; `None` once the
/// slot table is exhausted (spans are then dropped, aggregates unaffected).
fn my_slot() -> Option<usize> {
    MY_SLOT.with(|c| {
        let mut s = c.get();
        if s == usize::MAX {
            s = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            c.set(s);
        }
        (s < MAX_PROFILED_THREADS).then_some(s)
    })
}

/// Per-capture counters shared (via `Arc`) with the pool jobs and region
/// closures the capture's GEMM calls create.
pub(crate) struct CaptureInner {
    id: u64,
    /// Spans recorded with this capture's tag (whether or not retained).
    span_writes: AtomicU64,
    /// Total enqueue→pop nanoseconds over this capture's helper jobs.
    wake_ns: AtomicU64,
    /// Helper jobs executed for this capture.
    jobs: AtomicU64,
    /// `parallel_chunks` regions submitted by this capture.
    regions: AtomicU64,
    /// Deepest pool queue observed at this capture's submits.
    queue_hwm: AtomicU64,
}

/// Per-GEMM-call counters. The region closures bump these (atomically,
/// since pool workers share them); [`call_end`](Self) folds them into the
/// submitting thread's capture totals.
pub(crate) struct CallProf {
    pub(crate) inner: Arc<CaptureInner>,
    started: Instant,
    pub(crate) pack_a_ns: AtomicU64,
    pub(crate) pack_b_ns: AtomicU64,
    pub(crate) compute_ns: AtomicU64,
    pub(crate) pack_bytes: AtomicU64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Totals {
    gemm_calls: u64,
    flops: f64,
    wall_secs: f64,
    thread_secs: f64,
    pack_a_secs: f64,
    pack_b_secs: f64,
    compute_secs: f64,
    idle_secs: f64,
    pack_bytes: u64,
    pack_bound_bytes: u64,
    max_width: usize,
    elem_bytes: usize,
    /// The microkernel the folded calls dispatched to (last one wins; a
    /// capture normally runs a single kernel).
    kernel: Option<KernelKind>,
}

struct CaptureState {
    inner: Arc<CaptureInner>,
    totals: Totals,
    jobs_at_begin: Vec<u64>,
}

std::thread_local! {
    static CAPTURE: RefCell<Option<CaptureState>> = const { RefCell::new(None) };
}

static NEXT_CAPTURE_ID: AtomicU64 = AtomicU64::new(1);

/// Starts a capture on the calling thread: subsequent [`gemm`]
/// (crate::gemm::gemm) calls *from this thread* record into it (their pool
/// helper jobs inherit the capture tag). Replaces any capture already
/// active on this thread.
pub fn begin_capture() {
    let _ = epoch(); // pin t = 0 before any span can be recorded
    let id = NEXT_CAPTURE_ID.fetch_add(1, Ordering::Relaxed);
    let jobs_at_begin = slots()
        .iter()
        .map(|s| s.jobs.load(Ordering::Relaxed))
        .collect();
    CAPTURE.with(|c| {
        *c.borrow_mut() = Some(CaptureState {
            inner: Arc::new(CaptureInner {
                id,
                span_writes: AtomicU64::new(0),
                wake_ns: AtomicU64::new(0),
                jobs: AtomicU64::new(0),
                regions: AtomicU64::new(0),
                queue_hwm: AtomicU64::new(0),
            }),
            totals: Totals::default(),
            jobs_at_begin,
        });
    });
}

/// Ends the calling thread's capture and returns its aggregated profile
/// (`None` if no capture was active). Safe to call with profiling disabled.
///
/// Memory-order note: every worker write folded here happened before the
/// corresponding `parallel_chunks` returned on this thread (the region's
/// progress mutex provides the happens-before edge), so the relaxed counter
/// loads below observe complete values.
pub fn end_capture() -> Option<KernelProfile> {
    let st = CAPTURE.with(|c| c.borrow_mut().take())?;
    let t = st.totals;
    let inner = &st.inner;

    // Harvest the retained spans carrying this capture's tag. A record is
    // accepted only if its tag word reads identically before and after the
    // payload loads — a concurrent overwrite (by a *different* capture;
    // this capture's own writers are quiescent by now) changes the tag and
    // the record is skipped.
    let mut spans: Vec<ProfSpan> = Vec::new();
    for (slot_idx, slot) in slots().iter().enumerate() {
        let Some(ring) = slot.ring.get() else {
            continue;
        };
        let n = (slot.seq.load(Ordering::Acquire) as usize).min(RING_CAPACITY);
        for rec in 0..n {
            let base = rec * REC_WORDS;
            let tag = ring[base].load(Ordering::Acquire);
            if tag == 0 || tag >> 8 != inner.id {
                continue;
            }
            let t0_ns = ring[base + 1].load(Ordering::Relaxed);
            let t1_ns = ring[base + 2].load(Ordering::Relaxed);
            if ring[base].load(Ordering::Acquire) != tag || t1_ns < t0_ns {
                continue;
            }
            let Some(phase) = SpanPhase::from_u8((tag & 0xff) as u8) else {
                continue;
            };
            spans.push(ProfSpan {
                thread: slot_idx,
                phase,
                t0_ns,
                t1_ns,
            });
        }
    }
    spans.sort_by_key(|s| (s.thread, s.t0_ns, s.t1_ns));

    let busy_secs = t.pack_a_secs + t.pack_b_secs + t.compute_secs;
    let mut per_thread: Vec<(usize, f64)> = Vec::new();
    let mut span_busy = 0.0;
    for s in spans.iter().filter(|s| s.phase.is_busy()) {
        let d = (s.t1_ns - s.t0_ns) as f64 * 1e-9;
        span_busy += d;
        match per_thread.last_mut() {
            Some((thread, acc)) if *thread == s.thread => *acc += d,
            _ => per_thread.push((s.thread, d)),
        }
    }
    let coverage = if busy_secs > 0.0 {
        (span_busy / busy_secs).min(1.0)
    } else {
        1.0
    };
    let imbalance = if per_thread.len() >= 2 {
        let max = per_thread.iter().map(|&(_, d)| d).fold(0.0, f64::max);
        let mean = per_thread.iter().map(|&(_, d)| d).sum::<f64>() / per_thread.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    } else {
        1.0
    };
    let writes = inner.span_writes.load(Ordering::Relaxed);
    let dropped_spans = writes.saturating_sub(spans.len() as u64);

    let mut jobs_per_worker: Vec<u64> = slots()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let before = st.jobs_at_begin.get(i).copied().unwrap_or(0);
            s.jobs.load(Ordering::Relaxed).saturating_sub(before)
        })
        .collect();
    while jobs_per_worker.last() == Some(&0) {
        jobs_per_worker.pop();
    }

    Some(KernelProfile {
        gemm_calls: t.gemm_calls,
        flops: t.flops,
        gemm_wall_secs: t.wall_secs,
        thread_secs: t.thread_secs,
        pack_a_secs: t.pack_a_secs,
        pack_b_secs: t.pack_b_secs,
        compute_secs: t.compute_secs,
        idle_secs: t.idle_secs,
        pack_bytes: t.pack_bytes,
        pack_bound_bytes: t.pack_bound_bytes,
        achieved_gflops: if t.compute_secs > 0.0 {
            t.flops / t.compute_secs / 1e9
        } else {
            0.0
        },
        kernel: t.kernel.unwrap_or_else(kernel::gemm_kernel).name(),
        peak_gflops: tune::probed_peak_gflops_for_elem_kind(
            t.elem_bytes,
            t.kernel.unwrap_or_else(kernel::gemm_kernel),
        ),
        max_width: t.max_width,
        imbalance,
        coverage,
        dropped_spans,
        pool: PoolTelemetry {
            queue_depth_hwm: inner.queue_hwm.load(Ordering::Relaxed),
            submit_wake_secs: inner.wake_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            jobs: inner.jobs.load(Ordering::Relaxed),
            regions: inner.regions.load(Ordering::Relaxed),
            jobs_per_worker,
        },
        spans,
    })
}

/// Starts per-call instrumentation: `Some` only when profiling is enabled
/// *and* the calling thread has an active capture.
pub(crate) fn call_begin() -> Option<CallProf> {
    if !profiling_enabled() {
        return None;
    }
    let inner = CAPTURE.with(|c| c.borrow().as_ref().map(|s| Arc::clone(&s.inner)))?;
    Some(CallProf {
        inner,
        started: Instant::now(),
        pack_a_ns: AtomicU64::new(0),
        pack_b_ns: AtomicU64::new(0),
        compute_ns: AtomicU64::new(0),
        pack_bytes: AtomicU64::new(0),
    })
}

/// Folds one finished GEMM call into the submitting thread's capture.
/// `idle` is derived as `width·wall − busy` (clamped at zero), so the
/// capture's `pack + compute + idle` always reconciles with its summed
/// `width·wall` thread-seconds.
pub(crate) fn call_end(
    cp: CallProf,
    width: usize,
    flops: f64,
    pack_bound_bytes: u64,
    elem_bytes: usize,
    kind: KernelKind,
) {
    let wall = cp.started.elapsed().as_secs_f64();
    let pack_a = cp.pack_a_ns.load(Ordering::Relaxed) as f64 * 1e-9;
    let pack_b = cp.pack_b_ns.load(Ordering::Relaxed) as f64 * 1e-9;
    let compute = cp.compute_ns.load(Ordering::Relaxed) as f64 * 1e-9;
    let thread_secs = width as f64 * wall;
    let idle = (thread_secs - pack_a - pack_b - compute).max(0.0);
    CAPTURE.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(st) = borrow.as_mut() else { return };
        if st.inner.id != cp.inner.id {
            return; // the capture this call started under has ended
        }
        let t = &mut st.totals;
        t.gemm_calls += 1;
        t.flops += flops;
        t.wall_secs += wall;
        t.thread_secs += thread_secs;
        t.pack_a_secs += pack_a;
        t.pack_b_secs += pack_b;
        t.compute_secs += compute;
        t.idle_secs += idle;
        t.pack_bytes += cp.pack_bytes.load(Ordering::Relaxed);
        t.pack_bound_bytes += pack_bound_bytes;
        t.max_width = t.max_width.max(width);
        t.elem_bytes = elem_bytes;
        t.kernel = Some(kind);
    });
}

/// Writes one span into the recording thread's ring, tagged with the
/// capture. Lock-free and single-writer per slot; the tag is published
/// last (release) so a concurrent harvest never stitches fields from two
/// records together.
pub(crate) fn record_span(inner: &CaptureInner, phase: SpanPhase, t0_ns: u64, t1_ns: u64) {
    inner.span_writes.fetch_add(1, Ordering::Relaxed);
    let Some(slot_idx) = my_slot() else { return };
    let slot = &slots()[slot_idx];
    let ring = slot.ring.get_or_init(|| {
        (0..RING_CAPACITY * REC_WORDS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
    });
    let seq = slot.seq.load(Ordering::Relaxed);
    let base = (seq as usize % RING_CAPACITY) * REC_WORDS;
    ring[base].store(0, Ordering::Release); // invalidate while fields change
    ring[base + 1].store(t0_ns, Ordering::Relaxed);
    ring[base + 2].store(t1_ns, Ordering::Relaxed);
    ring[base].store((inner.id << 8) | phase as u64, Ordering::Release);
    slot.seq.store(seq + 1, Ordering::Release);
}

/// The calling thread's capture handle, for the pool to tag helper jobs
/// with; `None` when profiling is off or no capture is active.
pub(crate) fn active_handle() -> Option<Arc<CaptureInner>> {
    if !profiling_enabled() {
        return None;
    }
    CAPTURE.with(|c| c.borrow().as_ref().map(|s| Arc::clone(&s.inner)))
}

/// Counts one `parallel_chunks` region against the capture.
pub(crate) fn note_region(inner: &CaptureInner) {
    inner.regions.fetch_add(1, Ordering::Relaxed);
}

/// Records the pool queue depth observed right after a submit.
pub(crate) fn note_queue_depth(inner: &CaptureInner, depth: usize) {
    inner.queue_hwm.fetch_max(depth as u64, Ordering::Relaxed);
}

/// Called by a pool worker when it pops a tagged job: accounts the
/// submit→wake latency, the per-worker job count, and a `Wake` span.
pub(crate) fn note_wake(inner: &CaptureInner, enqueue_ns: u64) {
    let t = now_ns();
    inner
        .wake_ns
        .fetch_add(t.saturating_sub(enqueue_ns), Ordering::Relaxed);
    inner.jobs.fetch_add(1, Ordering::Relaxed);
    if let Some(slot) = my_slot() {
        slots()[slot].jobs.fetch_add(1, Ordering::Relaxed);
    }
    record_span(inner, SpanPhase::Wake, enqueue_ns, t);
}

/// Records a `Barrier` span (the submitter's completion wait) against the
/// capture.
pub(crate) fn note_barrier(inner: &CaptureInner, t0_ns: u64) {
    record_span(inner, SpanPhase::Barrier, t0_ns, now_ns());
}

/// Pool telemetry attributed to one capture (see the module docs;
/// `jobs_per_worker` is a *pool-wide* per-slot delta over the capture
/// window, so concurrent ranks' jobs appear in each other's vectors —
/// it answers "how busy was the shared pool while I ran", not "who worked
/// for me"; `jobs` is the capture-attributed count).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolTelemetry {
    /// Deepest pool queue observed at this capture's submits.
    pub queue_depth_hwm: u64,
    /// Total enqueue→pop seconds over this capture's helper jobs.
    pub submit_wake_secs: f64,
    /// Helper jobs executed for this capture.
    pub jobs: u64,
    /// `parallel_chunks` regions this capture submitted to the pool.
    pub regions: u64,
    /// Pool jobs executed per profiling slot over the capture window
    /// (trailing zeros trimmed).
    pub jobs_per_worker: Vec<u64>,
}

/// One capture's aggregated kernel profile.
///
/// The seconds fields are *thread-seconds* summed over every participating
/// thread: `pack_a_secs + pack_b_secs + compute_secs + idle_secs ==
/// thread_secs` (within float rounding), and `thread_secs` is the sum of
/// `width · wall` over the capture's GEMM calls, so dividing by
/// `max_width` recovers a wall-clock-comparable figure when the width was
/// constant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelProfile {
    /// GEMM calls folded into this capture.
    pub gemm_calls: u64,
    /// Nominal flop count (`Σ 2mnk`) of those calls.
    pub flops: f64,
    /// Summed wall seconds of the calls (as seen by the submitting thread).
    pub gemm_wall_secs: f64,
    /// Summed `width · wall` thread-seconds.
    pub thread_secs: f64,
    /// Thread-seconds packing A blocks.
    pub pack_a_secs: f64,
    /// Thread-seconds cooperatively packing B slabs.
    pub pack_b_secs: f64,
    /// Thread-seconds in the macro-tile microkernel phase.
    pub compute_secs: f64,
    /// Derived remainder: `thread_secs − busy`, clamped at zero — time
    /// participating threads were idle (scheduling gaps, barrier tails).
    pub idle_secs: f64,
    /// Bytes actually written by the pack routines.
    pub pack_bytes: u64,
    /// The analytic `O(MC·KC + KC·NC)` packed-working-set bound summed over
    /// the same calls (full-block sizes; measured traffic must stay ≤ it).
    pub pack_bound_bytes: u64,
    /// `flops / compute_secs / 1e9` — achieved per-busy-core Gflop/s.
    pub achieved_gflops: f64,
    /// Name of the dispatched microkernel the capture's calls ran
    /// (`"portable"` / `"avx2"` / `"avx512"`; the session-selected kernel
    /// when the capture folded no calls).
    pub kernel: &'static str,
    /// The probed single-core microkernel ceiling for the capture's
    /// element size *and kernel* (so `achieved/peak` stays ≤ 1 whichever
    /// kernel the dispatcher picked).
    pub peak_gflops: f64,
    /// Widest thread width any folded call used.
    pub max_width: usize,
    /// Max/mean per-thread busy seconds over the retained spans (1.0 when
    /// at most one thread recorded).
    pub imbalance: f64,
    /// Fraction of the exact busy seconds the retained spans represent
    /// (1.0 = no ring truncation).
    pub coverage: f64,
    /// Spans recorded but not retained (ring overwrite or slot-table
    /// exhaustion).
    pub dropped_spans: u64,
    /// Pool telemetry for the capture window.
    pub pool: PoolTelemetry,
    /// The retained spans, sorted by `(thread, t0)`. Not serialized into
    /// RunReport JSON; they feed the merged Chrome trace.
    pub spans: Vec<ProfSpan>,
}

impl KernelProfile {
    /// Busy thread-seconds (pack + compute).
    pub fn busy_secs(&self) -> f64 {
        self.pack_a_secs + self.pack_b_secs + self.compute_secs
    }

    /// Percentage split `(pack, compute, idle)` of `thread_secs`; zeros
    /// when the capture saw no GEMM.
    pub fn pct_split(&self) -> (f64, f64, f64) {
        if self.thread_secs <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let f = 100.0 / self.thread_secs;
        (
            (self.pack_a_secs + self.pack_b_secs) * f,
            self.compute_secs * f,
            self.idle_secs * f,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, GemmOp};
    use crate::mat::Mat;
    use crate::random::fill_random;

    fn profiled_square(dim: usize, threads: usize) -> KernelProfile {
        let mut a = Mat::<f64>::zeros(dim, dim);
        let mut b = Mat::<f64>::zeros(dim, dim);
        let mut c = Mat::<f64>::zeros(dim, dim);
        fill_random(&mut a, 7);
        fill_random(&mut b, 8);
        crate::pool::set_rank_gemm_threads(Some(threads));
        set_gemm_profiling(true);
        begin_capture();
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        let p = end_capture().expect("capture was active");
        set_gemm_profiling(false);
        crate::pool::set_rank_gemm_threads(None);
        p
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        set_gemm_profiling(false);
        begin_capture();
        let mut a = Mat::<f64>::zeros(8, 8);
        let b = Mat::<f64>::zeros(8, 8);
        let mut c = Mat::<f64>::zeros(8, 8);
        fill_random(&mut a, 1);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        let p = end_capture().expect("capture was active");
        assert_eq!(p.gemm_calls, 0);
        assert!(p.spans.is_empty());
    }

    #[test]
    fn serial_capture_reconciles_and_covers() {
        let p = profiled_square(96, 1);
        assert_eq!(p.gemm_calls, 1);
        assert_eq!(p.max_width, 1);
        assert_eq!(p.flops, 2.0 * 96.0 * 96.0 * 96.0);
        // The attribution identity: pack + compute + idle == thread_secs.
        let sum = p.pack_a_secs + p.pack_b_secs + p.compute_secs + p.idle_secs;
        assert!(
            (sum - p.thread_secs).abs() <= 0.05 * p.thread_secs + 1e-12,
            "split {sum} vs thread_secs {}",
            p.thread_secs
        );
        // Serial width: thread-seconds are the wall seconds.
        assert!((p.thread_secs - p.gemm_wall_secs).abs() < 1e-9);
        assert!(p.compute_secs > 0.0 && p.pack_a_secs > 0.0 && p.pack_b_secs > 0.0);
        assert!(p.pack_bytes > 0 && p.pack_bytes <= p.pack_bound_bytes);
        assert!(p.achieved_gflops > 0.0);
        assert!(p.peak_gflops > 0.0);
        assert_eq!(p.kernel, crate::kernel::gemm_kernel().name());
        assert!((0.0..=1.0).contains(&p.coverage));
        assert_eq!(p.dropped_spans, 0);
        assert!(p.spans.iter().any(|s| s.phase == SpanPhase::Compute));
        for s in &p.spans {
            assert!(s.t1_ns >= s.t0_ns);
        }
    }

    #[test]
    fn parallel_capture_sees_pool_telemetry() {
        let p = profiled_square(160, 3); // 160³·2 flops clears the cutoff
        assert_eq!(p.max_width, 3);
        assert!(p.pool.regions > 0, "pool regions must be counted");
        // Spans from the helper jobs land on other threads' slots when a
        // worker picks them up; the caller always records at least its own.
        assert!(!p.spans.is_empty());
        let sum = p.pack_a_secs + p.pack_b_secs + p.compute_secs + p.idle_secs;
        assert!((sum - p.thread_secs).abs() <= 0.05 * p.thread_secs + 1e-12);
    }

    #[test]
    fn concurrent_captures_do_not_mix() {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let p = profiled_square(96 + 32 * i, 2);
                    (96 + 32 * i, p)
                })
            })
            .collect();
        for h in handles {
            let (dim, p) = h.join().expect("capture thread");
            let d = dim as f64;
            assert_eq!(p.flops, 2.0 * d * d * d, "capture mixed in foreign calls");
            assert_eq!(p.gemm_calls, 1);
        }
    }

    #[test]
    fn pct_split_sums_to_hundred() {
        let p = profiled_square(96, 1);
        let (pack, compute, idle) = p.pct_split();
        assert!((pack + compute + idle - 100.0).abs() < 1.0);
    }
}
