//! Local (shared-memory) matrix multiplication.
//!
//! Plays the role of the OpenMP-parallel BLAS library in the paper's
//! artifact (§III-F: "Local (shared-memory) matrix multiplications are
//! handled by an OpenMP-parallelized BLAS library"). The implementation is
//! the canonical five-loop blocked design (Goto & van de Geijn; BLIS),
//! with cache-blocking parameters derived at runtime by
//! [`tune`](crate::tune):
//!
//! ```text
//! loop 5  jc over n in steps of NC      (B slab column panel)
//! loop 4  pc over k in steps of KC      (depth slab; packs Bp = KC×NC)
//! loop 3  ic over m in steps of MC      (A block;     packs Ap = MC×KC)
//! loop 2  jr over NC in steps of nr     (B strip, L1-resident)
//! loop 1  ir over MC in steps of mr     (microkernel: mr×nr registers)
//! ```
//!
//! * The `mr×nr` register block is *dispatched at runtime*: the
//!   [`kernel`](crate::kernel) module selects a portable, AVX2+FMA, or
//!   AVX-512 microkernel (overridable via `DENSE_GEMM_KERNEL` /
//!   [`kernel::set_gemm_kernel`]), and the selected kernel's geometry
//!   parameterizes packing, blocking, and the scratch sizes below.
//! * Only one `KC×NC` slab of `op(B)` and one `MC×KC` block of
//!   `alpha·op(A)` are ever packed at a time (see [`pack`](crate::pack)) —
//!   the packed working set is bounded by the cache-derived blocking, not
//!   by the matrix sizes, unlike the previous whole-operand pack whose
//!   footprint was `O(mk + kn)`.
//! * Both pack phases and the macro-tile compute phase are parallelized
//!   over the persistent [`pool`](crate::pool) with the shared
//!   chunk-counter scheme ([`pool::parallel_chunks`]): B-slab strips are
//!   packed cooperatively, then the `(jc, ic)` macro-tiles of `C` are
//!   claimed dynamically — every thread works from the *same* packed B
//!   slab and owns a contiguous `MC`-row band of `C`, packing its own A
//!   block into thread-local scratch.
//! * The parallel width honours [`pool::gemm_threads`] — process-wide
//!   `set_gemm_threads()` / `DENSE_GEMM_THREADS`, divided per rank by
//!   `msgpass::World::run` so P ranks do not oversubscribe the host.
//!
//! # NUMA-aware packing (first cut)
//!
//! The per-thread A-block scratch is always first-touched by the thread
//! that packs (and then consumes) it, so A pages land on the packing
//! thread's node by construction. The *shared* B slab is different: its
//! pages fault on whichever thread writes them first. When
//! [`tune::numa_packing`] is on (default on multi-node hosts,
//! `DENSE_GEMM_NUMA=1|0` to force), the slab scratch is grown *without*
//! pre-faulting, so first touch happens inside the cooperative pack phase
//! — strips are claimed in chunks by all workers, interleaving the slab's
//! pages across the participating threads' nodes at chunk granularity.
//! When off, the submitting thread pre-faults the slab at allocation (the
//! pre-NUMA placement). Values never change either way — only page
//! placement does — so the toggle is a strict no-op on single-node hosts.
//!
//! Every `C` element is accumulated in the same order regardless of the
//! thread width — depth slabs arrive in ascending `pc` order, each applied
//! exactly once per element, and the microkernel sums `l` in order within a
//! slab — so results are bitwise identical for any thread count *for a
//! given kernel* (pinned by tests per kernel; kernels differ from each
//! other by FMA rounding). `MC` is allowed to shrink with the thread width
//! (for scheduling grain) precisely because the per-element summation
//! order depends only on `KC`, never on `MC`/`NC`.

use crate::kernel::{self, KernelKind};
use crate::mat::Mat;
use crate::pack;
use crate::pool;
use crate::prof;
use crate::scalar::Scalar;
use crate::tune;
use std::any::Any;
use std::cell::RefCell;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

std::thread_local! {
    /// Reused packed-B slab buffer for the thread *submitting* a GEMM
    /// (type-erased because `gemm` is generic): steady-state iteration
    /// (e.g. Cannon shifts) never re-allocates it. Held as `MaybeUninit`
    /// so growth can skip pre-faulting under NUMA-aware packing.
    static BP_SCRATCH: RefCell<Option<Box<dyn Any>>> = const { RefCell::new(None) };
    /// Reused packed-A block buffer, one per participating thread (pool
    /// workers and submitters alike pack their own A blocks — each buffer
    /// is first-touched, and therefore NUMA-placed, by its owning thread).
    static AP_SCRATCH: RefCell<Option<Box<dyn Any>>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's reusable `Vec<T>` scratch from `cell`,
/// growing it to at least `len` elements first (never shrinking, so
/// steady-state repeats do not re-allocate).
fn with_scratch<T: Scalar, R>(
    cell: &'static std::thread::LocalKey<RefCell<Option<Box<dyn Any>>>>,
    len: usize,
    f: impl FnOnce(&mut Vec<T>) -> R,
) -> R {
    cell.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot
            .as_mut()
            .and_then(|b| b.downcast_mut::<Vec<T>>())
            .is_none()
        {
            *slot = Some(Box::new(Vec::<T>::new()));
        }
        let buf = slot
            .as_mut()
            .and_then(|b| b.downcast_mut::<Vec<T>>())
            .expect("scratch was just installed for this scalar type");
        if buf.len() < len {
            buf.resize(len, T::ZERO);
        }
        f(buf)
    })
}

/// Runs `f` with a raw pointer to this thread's reusable B-slab scratch,
/// grown to at least `len` elements. With `prefault` the grown region is
/// zeroed on the calling (submitting) thread, faulting its pages here;
/// without it the memory stays untouched until the pack workers write it
/// (NUMA first-touch — see the module docs). The pointee is only ever
/// read after the pack phase has written it, so it is never observed
/// uninitialized.
fn with_bp_scratch<T: Scalar, R>(len: usize, prefault: bool, f: impl FnOnce(*mut T) -> R) -> R {
    BP_SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot
            .as_mut()
            .and_then(|b| b.downcast_mut::<Vec<MaybeUninit<T>>>())
            .is_none()
        {
            *slot = Some(Box::new(Vec::<MaybeUninit<T>>::new()));
        }
        let buf = slot
            .as_mut()
            .and_then(|b| b.downcast_mut::<Vec<MaybeUninit<T>>>())
            .expect("scratch was just installed for this scalar type");
        if buf.len() < len {
            let old = buf.len();
            buf.reserve(len - old);
            // SAFETY: capacity was just reserved, and `MaybeUninit<T>` is
            // valid uninitialized.
            unsafe { buf.set_len(len) };
            if prefault {
                for v in &mut buf[old..] {
                    *v = MaybeUninit::new(T::ZERO);
                }
            }
        }
        f(buf.as_mut_ptr().cast::<T>())
    })
}

/// Whether an operand is used as-is or transposed (the `op()` of
/// `C = op(A) × op(B)` in the paper, eq. after (8)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GemmOp {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl GemmOp {
    /// Parses the artifact CLI's `0`/`1` convention.
    pub fn from_flag(flag: u32) -> Self {
        if flag == 0 {
            GemmOp::NoTrans
        } else {
            GemmOp::Trans
        }
    }

    /// The shape of `op(X)` given the stored shape of `X`.
    pub fn apply_shape(&self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            GemmOp::NoTrans => (rows, cols),
            GemmOp::Trans => (cols, rows),
        }
    }
}

/// Below this many flops (`2mnk`) the kernel stays single-threaded: the
/// fork-join submit/wake cost would exceed the win. Roughly an 80³ f64
/// multiply (~30 µs on one AVX-512 core).
const PARALLEL_FLOP_CUTOFF: usize = 1 << 20;

/// A raw matrix pointer that may cross into pool workers. All dereferences
/// target regions proven disjoint per claimed chunk (B-slab strips during
/// packing, `MC`-row C bands during compute), and `pool::parallel_chunks`
/// guarantees the pointee outlives every dereference.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — edition-2021 disjoint capture would otherwise move just
    /// the raw pointer field, which is not `Sync`.
    fn get(self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Loops 2 + 1: multiplies one packed `rows×kk` A block against one packed
/// `kk×nc_here` B slab and folds the result into the `C` tile at
/// `(i0, jc)`: `C = beta·C + Ap·Bp` (the caller passes `beta` on the first
/// depth slab and `1` afterwards, so `beta·C` is applied exactly once).
/// The register block is `mr×nr` — the geometry of the dispatched `kind`
/// ([`kernel::microkernel`]), which both panels were packed for.
///
/// # Safety
/// `c` must point at the start of a `ldc`-pitch row-major matrix with at
/// least `i0 + rows` rows and `jc + nc_here` columns, and no other thread
/// may touch rows `i0 .. i0+rows` of columns `jc .. jc+nc_here` while this
/// runs (the compute phase partitions C into disjoint `MC`-row bands).
#[allow(clippy::too_many_arguments)]
unsafe fn macro_kernel<T: Scalar>(
    kind: KernelKind,
    mr: usize,
    nr: usize,
    ap: &[T],
    bp: &[T],
    rows: usize,
    kk: usize,
    nc_here: usize,
    beta: T,
    c: SendPtr<T>,
    ldc: usize,
    i0: usize,
    jc: usize,
) {
    let a_strips = rows.div_ceil(mr);
    let b_strips = nc_here.div_ceil(nr);
    let tile = mr * nr;
    // One flat mr×nr accumulator, re-zeroed per register tile. MAX_ACC
    // bounds every kernel geometry, so this lives on the stack.
    let mut acc = [T::ZERO; kernel::MAX_ACC];
    for jr in 0..b_strips {
        let bpanel = &bp[jr * kk * nr..(jr + 1) * kk * nr];
        let j0 = jr * nr;
        let cols = nr.min(nc_here - j0);
        for ir in 0..a_strips {
            let apanel = &ap[ir * kk * mr..(ir + 1) * kk * mr];
            acc[..tile].fill(T::ZERO);
            kernel::microkernel(kind, apanel, bpanel, kk, &mut acc[..tile]);
            // Clipped store: the zero-padded panels make the kernel
            // edge-free; partial blocks are trimmed only here.
            let r0 = ir * mr;
            let rows_here = mr.min(rows - r0);
            for i in 0..rows_here {
                let acc_row = &acc[i * nr..i * nr + cols];
                // SAFETY: rows i0+r0+i < i0+rows and cols jc+j0 .. +cols
                // <= jc+nc_here are inside C and owned by this tile.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(c.get().add((i0 + r0 + i) * ldc + jc + j0), cols)
                };
                if beta == T::ZERO {
                    dst.copy_from_slice(acc_row);
                } else if beta == T::ONE {
                    for (d, s) in dst.iter_mut().zip(acc_row) {
                        *d += *s;
                    }
                } else {
                    for (d, s) in dst.iter_mut().zip(acc_row) {
                        *d = beta * *d + *s;
                    }
                }
            }
        }
    }
}

fn scale_in_place<T: Scalar>(c: &mut Mat<T>, beta: T) {
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        c.as_mut_slice().fill(T::ZERO);
    } else {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
}

/// The `MC` actually used: the tuned value, shrunk when the thread width
/// would otherwise leave fewer than ~3 macro-tiles per thread to claim
/// (dynamic chunk scheduling needs slack to balance). Safe to vary freely:
/// the per-element summation order depends only on `KC`, so results stay
/// bitwise identical across widths (and across the `MC` values they pick).
fn effective_mc(mc: usize, m: usize, width: usize, mr: usize) -> usize {
    if width <= 1 {
        return mc;
    }
    let cap = m.div_ceil(3 * width).next_multiple_of(mr);
    mc.min(cap).max(mr)
}

/// The floating-point operation count of one `m×k · k×n` GEMM — the
/// standard `2mnk` (one multiply + one add per inner-product term). This is
/// the quantity a virtual-time run charges its clock with in place of
/// executing the kernel, so it must stay the *nominal* count, independent
/// of blocking or threading.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// `C = alpha * op(A) * op(B) + beta * C`, cache-blocked (five-loop
/// Goto/BLIS structure, KC/MC/NC from [`tune`](crate::tune)), packed,
/// register-blocked, and parallel over the persistent
/// [`pool`](crate::pool).
///
/// Shapes after applying the ops must agree:
/// `op(A): m×k`, `op(B): k×n`, `C: m×n`.
///
/// Results are bitwise identical for any kernel-thread width.
///
/// # Panics
/// On any shape mismatch.
pub fn gemm<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    let (m, k) = op_a.apply_shape(a.rows(), a.cols());
    let (kb, n) = op_b.apply_shape(b.rows(), b.cols());
    assert_eq!(
        k, kb,
        "inner dimensions disagree: op(A) is {m}x{k}, op(B) is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C is {:?}, expected {m}x{n}", c.shape());
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == T::ZERO {
        scale_in_place(c, beta);
        return;
    }

    let kind = kernel::gemm_kernel_for::<T>();
    let (mr, nr) = kind.geom(std::mem::size_of::<T>());
    let bl = tune::blocking_for::<T>(kind);
    let width = if m.saturating_mul(n).saturating_mul(k).saturating_mul(2) < PARALLEL_FLOP_CUTOFF {
        1
    } else {
        pool::gemm_threads().max(1)
    };
    let kc = bl.kc;
    let nc = bl.nc;
    let mc = effective_mc(bl.mc, m, width, mr);
    let tiles = m.div_ceil(mc);
    let ldc = n;
    let c_ptr = SendPtr(c.as_mut_slice().as_mut_ptr());

    // Kernel profiling (off: one relaxed load, `cp` stays `None` and every
    // instrumentation site below is an untaken branch). The counters live
    // on this stack frame; region closures bump them through `cpr`.
    let cp = prof::call_begin();
    let cpr = cp.as_ref();
    let elem = std::mem::size_of::<T>();

    // Largest B slab this call packs; grown once, reused across slabs and
    // across calls via the thread-local scratch. The padded-strip count
    // must round *up* to nr: an override blocking's nc need not be a
    // multiple of the dispatched kernel's nr.
    let bp_cap = nc.min(n).next_multiple_of(nr) * kc.min(k);
    let prefault = !tune::numa_packing();
    with_bp_scratch(bp_cap, prefault, |bp_raw: *mut T| {
        let bp_ptr = SendPtr(bp_raw);
        let mut jc = 0;
        while jc < n {
            let nc_here = nc.min(n - jc);
            let b_strips = nc_here.div_ceil(nr);
            let mut pc = 0;
            let mut slab = 0usize;
            while pc < k {
                let kc_here = kc.min(k - pc);
                let beta_here = if slab == 0 { beta } else { T::ONE };

                // Loop 4 prologue: pack Bp = op(B)[pc.., jc..] (KC×NC)
                // cooperatively — strips are independent, zero-padded by
                // the packer, and land in disjoint regions of the slab.
                // Under NUMA-aware packing this is also where the slab's
                // pages are first touched, by the claiming workers.
                let strip_group = b_strips.div_ceil(4 * width).max(1);
                let pack_chunks = b_strips.div_ceil(strip_group);
                pool::parallel_chunks(width, pack_chunks, &move |chunk| {
                    let prof_t0 = cpr.map(|_| prof::now_ns());
                    let t0 = chunk * strip_group;
                    let t1 = (t0 + strip_group).min(b_strips);
                    for t in t0..t1 {
                        // SAFETY: strip t owns bp[t*kc_here*nr ..
                        // (t+1)*kc_here*nr); strips are disjoint and the
                        // buffer holds b_strips*kc_here*nr <= bp_cap
                        // elements.
                        let strip = unsafe {
                            std::slice::from_raw_parts_mut(
                                bp_ptr.get().add(t * kc_here * nr),
                                kc_here * nr,
                            )
                        };
                        let j0 = t * nr;
                        pack::pack_b_strip_into(
                            op_b,
                            b,
                            pc,
                            jc + j0,
                            kc_here,
                            nr.min(nc_here - j0),
                            nr,
                            strip,
                        );
                    }
                    if let (Some(cp), Some(p0)) = (cpr, prof_t0) {
                        let p1 = prof::now_ns();
                        cp.pack_b_ns.fetch_add(p1 - p0, Ordering::Relaxed);
                        cp.pack_bytes
                            .fetch_add(((t1 - t0) * kc_here * nr * elem) as u64, Ordering::Relaxed);
                        prof::record_span(&cp.inner, prof::SpanPhase::PackB, p0, p1);
                    }
                });

                // Loop 3: claim (jc, ic) macro-tiles dynamically; each
                // tile packs its own A block into per-thread scratch and
                // folds Ap·Bp into its private MC-row band of C.
                // SAFETY: the pack phase above fully wrote (and therefore
                // initialized) exactly this prefix of the slab scratch,
                // and the barrier at the end of parallel_chunks makes
                // those writes visible here.
                let bp_view: &[T] = unsafe {
                    std::slice::from_raw_parts(bp_ptr.get() as *const T, b_strips * kc_here * nr)
                };
                pool::parallel_chunks(width, tiles, &move |tile| {
                    let i0 = tile * mc;
                    let rows = mc.min(m - i0);
                    let ap_len = rows.div_ceil(mr) * kc_here * mr;
                    with_scratch(&AP_SCRATCH, ap_len, |ap: &mut Vec<T>| {
                        let prof_t0 = cpr.map(|_| prof::now_ns());
                        pack::pack_a_block_into(
                            op_a,
                            alpha,
                            a,
                            i0,
                            pc,
                            rows,
                            kc_here,
                            mr,
                            &mut ap[..ap_len],
                        );
                        let prof_t1 = cpr.map(|cp| {
                            let p1 = prof::now_ns();
                            let p0 = prof_t0.expect("pack timestamp taken above");
                            cp.pack_a_ns.fetch_add(p1 - p0, Ordering::Relaxed);
                            cp.pack_bytes
                                .fetch_add((ap_len * elem) as u64, Ordering::Relaxed);
                            prof::record_span(&cp.inner, prof::SpanPhase::PackA, p0, p1);
                            p1
                        });
                        // SAFETY: this tile exclusively owns C rows
                        // i0..i0+rows (tiles partition 0..m) within the
                        // current jc column band; see macro_kernel's
                        // contract.
                        unsafe {
                            macro_kernel(
                                kind,
                                mr,
                                nr,
                                &ap[..ap_len],
                                bp_view,
                                rows,
                                kc_here,
                                nc_here,
                                beta_here,
                                c_ptr,
                                ldc,
                                i0,
                                jc,
                            );
                        }
                        if let (Some(cp), Some(p1)) = (cpr, prof_t1) {
                            let p2 = prof::now_ns();
                            cp.compute_ns.fetch_add(p2 - p1, Ordering::Relaxed);
                            prof::record_span(&cp.inner, prof::SpanPhase::Compute, p1, p2);
                        }
                    });
                });

                pc += kc_here;
                slab += 1;
            }
            jc += nc_here;
        }
    });

    if let Some(cp) = cp {
        // The analytic packed-working-set bound: every (jc, pc) slab packs
        // at most one padded KC×NC B slab plus `tiles` padded MC×KC A
        // blocks. Measured pack traffic must stay ≤ this.
        let slabs = n.div_ceil(nc) * k.div_ceil(kc);
        let per_slab = kc.min(k) * nc.min(n).next_multiple_of(nr)
            + tiles * mc.next_multiple_of(mr) * kc.min(k);
        prof::call_end(
            cp,
            width,
            gemm_flops(m, n, k),
            (slabs * per_slab * elem) as u64,
            elem,
            kind,
        );
    }
}

/// The pre-packing kernel this repository shipped before the packed
/// rewrite, kept (single-threaded) as the honest before/after baseline for
/// `benches/local_gemm.rs`: transposes materialized up front, an `i–l–j`
/// saxpy-style update with `l`/`j` cache tiling, and the
/// vectorization-hostile `aval == 0` branch.
pub fn gemm_unpacked<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    const TILE_L: usize = 128;
    const TILE_J: usize = 256;

    let at;
    let a_eff: &Mat<T> = match op_a {
        GemmOp::NoTrans => a,
        GemmOp::Trans => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_eff: &Mat<T> = match op_b {
        GemmOp::NoTrans => b,
        GemmOp::Trans => {
            bt = b.transpose();
            &bt
        }
    };

    let (m, k) = a_eff.shape();
    let (kb, n) = b_eff.shape();
    assert_eq!(
        k, kb,
        "inner dimensions disagree: op(A) is {m}x{k}, op(B) is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C is {:?}, expected {m}x{n}", c.shape());
    if m == 0 || n == 0 {
        return;
    }

    let a_data = a_eff.as_slice();
    let b_data = b_eff.as_slice();
    let c_rows = c.as_mut_slice();
    if beta != T::ONE {
        if beta == T::ZERO {
            c_rows.fill(T::ZERO);
        } else {
            for v in c_rows.iter_mut() {
                *v *= beta;
            }
        }
    }
    if k == 0 || alpha == T::ZERO {
        return;
    }
    for l0 in (0..k).step_by(TILE_L) {
        let lmax = (l0 + TILE_L).min(k);
        for j0 in (0..n).step_by(TILE_J) {
            let jmax = (j0 + TILE_J).min(n);
            for i in 0..m {
                let c_row = &mut c_rows[i * n + j0..i * n + jmax];
                for l in l0..lmax {
                    let aval = alpha * a_data[i * k + l];
                    if aval == T::ZERO {
                        continue;
                    }
                    let b_row = &b_data[l * n + j0..l * n + jmax];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aval * *bv;
                    }
                }
            }
        }
    }
}

/// Triple-loop reference kernel, used only by tests to validate [`gemm`].
pub fn gemm_naive<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    let (m, k) = op_a.apply_shape(a.rows(), a.cols());
    let (kb, n) = op_b.apply_shape(b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions disagree");
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    let av = |i: usize, l: usize| match op_a {
        GemmOp::NoTrans => a.get(i, l),
        GemmOp::Trans => a.get(l, i),
    };
    let bv = |l: usize, j: usize| match op_b {
        GemmOp::NoTrans => b.get(l, j),
        GemmOp::Trans => b.get(j, l),
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += av(i, l) * bv(l, j);
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * acc + beta * old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{MR, NR};
    use crate::random::fill_random;
    use crate::tune::{set_gemm_blocking, Blocking};

    fn check_against_naive(
        m: usize,
        n: usize,
        k: usize,
        op_a: GemmOp,
        op_b: GemmOp,
        alpha: f64,
        beta: f64,
    ) {
        let (ar, ac) = match op_a {
            GemmOp::NoTrans => (m, k),
            GemmOp::Trans => (k, m),
        };
        let (br, bc) = match op_b {
            GemmOp::NoTrans => (k, n),
            GemmOp::Trans => (n, k),
        };
        let mut a = Mat::<f64>::zeros(ar, ac);
        let mut b = Mat::<f64>::zeros(br, bc);
        let mut c = Mat::<f64>::zeros(m, n);
        fill_random(&mut a, 1);
        fill_random(&mut b, 2);
        fill_random(&mut c, 3);
        let mut c_ref = c.clone();
        let mut c_old = c.clone();

        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c);
        gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c_ref);
        gemm_unpacked(op_a, op_b, alpha, &a, &b, beta, &mut c_old);
        let tol = 1e-12 * (k.max(1) as f64);
        assert!(
            c.max_abs_diff(&c_ref) < tol,
            "packed vs naive mismatch m={m} n={n} k={k} {op_a:?} {op_b:?}"
        );
        assert!(
            c_old.max_abs_diff(&c_ref) < tol,
            "unpacked vs naive mismatch m={m} n={n} k={k} {op_a:?} {op_b:?}"
        );
    }

    #[test]
    fn matches_naive_square() {
        check_against_naive(33, 33, 33, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn matches_naive_rect_all_ops() {
        for &(op_a, op_b) in &[
            (GemmOp::NoTrans, GemmOp::NoTrans),
            (GemmOp::Trans, GemmOp::NoTrans),
            (GemmOp::NoTrans, GemmOp::Trans),
            (GemmOp::Trans, GemmOp::Trans),
        ] {
            check_against_naive(17, 29, 41, op_a, op_b, 1.0, 0.0);
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        check_against_naive(10, 12, 14, GemmOp::NoTrans, GemmOp::NoTrans, 2.5, 0.5);
        check_against_naive(10, 12, 14, GemmOp::Trans, GemmOp::Trans, -1.0, 1.0);
        check_against_naive(10, 12, 14, GemmOp::NoTrans, GemmOp::NoTrans, 0.0, 2.0);
    }

    #[test]
    fn sizes_crossing_register_block_boundaries() {
        // Around the MR/NR register blocks.
        check_against_naive(65, 300, 200, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        check_against_naive(1, 1, 513, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        check_against_naive(513, 1, 1, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        for d in [MR - 1, MR, MR + 1, NR - 1, NR, NR + 1] {
            check_against_naive(d, d, d, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        }
    }

    #[test]
    fn sizes_crossing_cache_block_boundaries() {
        // Pin a tiny blocking so m/n/k cross the MC/NC/KC block boundaries
        // with cheap shapes: KC = 8, MC = 8, NC = 32.
        set_gemm_blocking(Some(Blocking {
            mc: 8,
            kc: 8,
            nc: 32,
        }));
        for k in [7, 8, 9, 16, 17, 25] {
            check_against_naive(13, 21, k, GemmOp::Trans, GemmOp::NoTrans, 1.0, 1.0);
        }
        for m in [7, 8, 9, 24, 25] {
            check_against_naive(m, 33, 20, GemmOp::NoTrans, GemmOp::Trans, 1.0, -0.5);
        }
        for n in [31, 32, 33, 64, 65] {
            check_against_naive(9, n, 12, GemmOp::NoTrans, GemmOp::NoTrans, 2.0, 0.0);
        }
        set_gemm_blocking(None);
    }

    #[test]
    fn degenerate_dimensions() {
        // k = 0 with beta = 0 must zero C
        let a = Mat::<f64>::zeros(3, 0);
        let b = Mat::<f64>::zeros(0, 4);
        let mut c = Mat::from_fn(3, 4, |_, _| 7.0);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));

        // m = 0 / n = 0 are no-ops
        let a = Mat::<f64>::zeros(0, 5);
        let b = Mat::<f64>::zeros(5, 4);
        let mut c = Mat::<f64>::zeros(0, 4);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn f32_instantiation() {
        let a = Mat::<f32>::from_fn(8, 8, |i, j| (i + j) as f32 * 0.25);
        let b = Mat::<f32>::from_fn(8, 8, |i, j| (i as f32 - j as f32) * 0.5);
        let mut c = Mat::<f32>::zeros(8, 8);
        let mut c_ref = Mat::<f32>::zeros(8, 8);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_ref,
        );
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Mat::<f64>::zeros(2, 3);
        let b = Mat::<f64>::zeros(4, 2);
        let mut c = Mat::<f64>::zeros(2, 2);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn op_shape_helper() {
        assert_eq!(GemmOp::NoTrans.apply_shape(2, 3), (2, 3));
        assert_eq!(GemmOp::Trans.apply_shape(2, 3), (3, 2));
        assert_eq!(GemmOp::from_flag(0), GemmOp::NoTrans);
        assert_eq!(GemmOp::from_flag(1), GemmOp::Trans);
    }

    #[test]
    fn effective_mc_preserves_grain_and_alignment() {
        // Serial keeps the tuned value; parallel shrinks to >= 3 tiles per
        // thread, mr-aligned, never below mr.
        assert_eq!(effective_mc(512, 1024, 1, MR), 512);
        let mc4 = effective_mc(512, 1024, 4, MR);
        assert!(mc4 <= 512 && mc4.is_multiple_of(MR));
        assert!(1024usize.div_ceil(mc4) >= 3 * 4);
        assert_eq!(effective_mc(512, 2, 8, MR), MR);
        // Wider-mr kernels keep their own alignment.
        assert_eq!(effective_mc(512, 2, 8, 12), 12);
        assert!(effective_mc(512, 1024, 4, 6).is_multiple_of(6));
    }

    #[test]
    fn forced_parallel_width_matches_serial_per_kernel() {
        // For EVERY available kernel: pin a width wider than the host and a
        // small blocking so the pool path and several cache blocks really
        // engage, then check bitwise equality against width 1. (The matrix
        // clears the parallel flop cutoff.) This is the per-kernel
        // thread-width determinism contract from the module docs.
        set_gemm_blocking(Some(Blocking {
            mc: 32,
            kc: 16,
            nc: 48,
        }));
        let mut a = Mat::<f64>::zeros(130, 70);
        let mut b = Mat::<f64>::zeros(70, 90);
        let mut c0 = Mat::<f64>::zeros(130, 90);
        fill_random(&mut a, 11);
        fill_random(&mut b, 12);
        fill_random(&mut c0, 13);

        for kind in KernelKind::ALL {
            if !kind.available() {
                continue;
            }
            kernel::set_gemm_kernel(Some(kind));
            let mut c1 = c0.clone();
            let mut c4 = c0.clone();
            crate::pool::set_rank_gemm_threads(Some(1));
            gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.5, &a, &b, 0.5, &mut c1);
            crate::pool::set_rank_gemm_threads(Some(4));
            gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.5, &a, &b, 0.5, &mut c4);
            crate::pool::set_rank_gemm_threads(None);
            assert_eq!(
                c1.as_slice(),
                c4.as_slice(),
                "thread width changed bits under {} kernel",
                kind.name()
            );
        }
        kernel::set_gemm_kernel(None);
        set_gemm_blocking(None);
    }

    #[test]
    fn all_kernels_match_naive() {
        // Odd shapes exercise ragged mr/nr tails of every geometry.
        let mut a = Mat::<f64>::zeros(29, 31);
        let mut b = Mat::<f64>::zeros(31, 37);
        let mut c_ref = Mat::<f64>::zeros(29, 37);
        fill_random(&mut a, 21);
        fill_random(&mut b, 22);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_ref,
        );
        for kind in KernelKind::ALL {
            if !kind.available() {
                continue;
            }
            kernel::set_gemm_kernel(Some(kind));
            let mut c = Mat::<f64>::zeros(29, 37);
            gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
            assert!(
                c.max_abs_diff(&c_ref) < 1e-11,
                "{} kernel diverged from naive",
                kind.name()
            );
        }
        kernel::set_gemm_kernel(None);
    }

    #[test]
    fn bp_scratch_grows_with_and_without_prefault() {
        // Each arm runs on a fresh thread so its thread-local scratch
        // starts empty and the growth path really executes. Values written
        // through the pointer must read back identically either way —
        // prefault is a page-placement knob, not a semantic one.
        for prefault in [true, false] {
            std::thread::scope(|s| {
                s.spawn(move || {
                    with_bp_scratch(257, prefault, |p: *mut f64| {
                        for i in 0..257 {
                            unsafe { p.add(i).write(i as f64) };
                        }
                    });
                    // Re-entry reuses (and may grow) the same buffer.
                    with_bp_scratch(1024, prefault, |p: *mut f64| {
                        for i in 0..257 {
                            assert_eq!(unsafe { p.add(i).read() }, i as f64);
                        }
                        unsafe { p.add(1023).write(-1.0) };
                        assert_eq!(unsafe { p.add(1023).read() }, -1.0);
                    });
                });
            });
        }
    }
}
