//! Local (shared-memory) matrix multiplication.
//!
//! Plays the role of the OpenMP-parallel BLAS library in the paper's
//! artifact (§III-F: "Local (shared-memory) matrix multiplications are
//! handled by an OpenMP-parallelized BLAS library"). The implementation is a
//! straightforward blocked kernel:
//!
//! * the `i–l–j` loop order streams both `C` and `B` rows through cache for
//!   row-major storage;
//! * `l`/`j` tiling keeps the working set of the inner kernel resident in L1/L2;
//! * row-blocks of `C` are distributed over scoped OS threads (each thread
//!   owns a disjoint slice of `C`, so the kernel is data-race free by
//!   construction);
//! * transposed operands are materialized once up front (the classic "pack"
//!   step) rather than strided through.
//!
//! This will not beat MKL, and does not need to: every algorithm in the
//! workspace pays the same local-GEMM price, and the paper's comparisons are
//! about communication.

use crate::mat::Mat;
use crate::scalar::Scalar;

/// Whether an operand is used as-is or transposed (the `op()` of
/// `C = op(A) × op(B)` in the paper, eq. after (8)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GemmOp {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl GemmOp {
    /// Parses the artifact CLI's `0`/`1` convention.
    pub fn from_flag(flag: u32) -> Self {
        if flag == 0 {
            GemmOp::NoTrans
        } else {
            GemmOp::Trans
        }
    }

    /// The shape of `op(X)` given the stored shape of `X`.
    pub fn apply_shape(&self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            GemmOp::NoTrans => (rows, cols),
            GemmOp::Trans => (cols, rows),
        }
    }
}

/// Number of `l` (inner dimension) steps per cache tile.
const TILE_L: usize = 128;
/// Number of `j` (C columns) per cache tile.
const TILE_J: usize = 256;
/// Rows of `C` handled per parallel task.
const ROW_BLOCK: usize = 32;

/// `C = alpha * op(A) * op(B) + beta * C`, blocked and thread-parallel.
///
/// Shapes after applying the ops must agree:
/// `op(A): m×k`, `op(B): k×n`, `C: m×n`.
///
/// # Panics
/// On any shape mismatch.
pub fn gemm<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    // Materialize transposes once; the kernel below then only ever sees
    // row-major NoTrans operands.
    let at;
    let a_eff: &Mat<T> = match op_a {
        GemmOp::NoTrans => a,
        GemmOp::Trans => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_eff: &Mat<T> = match op_b {
        GemmOp::NoTrans => b,
        GemmOp::Trans => {
            bt = b.transpose();
            &bt
        }
    };

    let (m, k) = a_eff.shape();
    let (kb, n) = b_eff.shape();
    assert_eq!(
        k, kb,
        "inner dimensions disagree: op(A) is {m}x{k}, op(B) is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C is {:?}, expected {m}x{n}", c.shape());
    if m == 0 || n == 0 {
        return;
    }

    let a_data = a_eff.as_slice();
    let b_data = b_eff.as_slice();

    // The blocked kernel for one ROW_BLOCK slab of C starting at row i0.
    let kernel = |i0: usize, c_rows: &mut [T]| {
        let rows_here = c_rows.len() / n;
        // beta scaling first
        if beta != T::ONE {
            if beta == T::ZERO {
                c_rows.fill(T::ZERO);
            } else {
                for v in c_rows.iter_mut() {
                    *v *= beta;
                }
            }
        }
        if k == 0 || alpha == T::ZERO {
            return;
        }
        for l0 in (0..k).step_by(TILE_L) {
            let lmax = (l0 + TILE_L).min(k);
            for j0 in (0..n).step_by(TILE_J) {
                let jmax = (j0 + TILE_J).min(n);
                for di in 0..rows_here {
                    let i = i0 + di;
                    let c_row = &mut c_rows[di * n + j0..di * n + jmax];
                    for l in l0..lmax {
                        let aval = alpha * a_data[i * k + l];
                        if aval == T::ZERO {
                            continue;
                        }
                        let b_row = &b_data[l * n + j0..l * n + jmax];
                        for (cv, bv) in c_row.iter_mut().zip(b_row) {
                            *cv += aval * *bv;
                        }
                    }
                }
            }
        }
    };

    // Distribute ROW_BLOCK slabs over scoped threads: each worker owns a
    // disjoint contiguous stripe of C rows.
    let blocks = m.div_ceil(ROW_BLOCK);
    let workers = std::thread::available_parallelism()
        .map_or(1, |w| w.get())
        .min(blocks);
    if workers <= 1 {
        for (blk, c_rows) in c.as_mut_slice().chunks_mut(ROW_BLOCK * n).enumerate() {
            kernel(blk * ROW_BLOCK, c_rows);
        }
    } else {
        let blocks_per_worker = blocks.div_ceil(workers);
        std::thread::scope(|s| {
            let kernel = &kernel;
            let mut rest = c.as_mut_slice();
            let mut row0 = 0;
            while !rest.is_empty() {
                let rows_here = (blocks_per_worker * ROW_BLOCK).min(rest.len() / n);
                let (stripe, tail) = rest.split_at_mut(rows_here * n);
                rest = tail;
                let base = row0;
                s.spawn(move || {
                    for (blk, c_rows) in stripe.chunks_mut(ROW_BLOCK * n).enumerate() {
                        kernel(base + blk * ROW_BLOCK, c_rows);
                    }
                });
                row0 += rows_here;
            }
        });
    }
}

/// Triple-loop reference kernel, used only by tests to validate [`gemm`].
pub fn gemm_naive<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    let (m, k) = op_a.apply_shape(a.rows(), a.cols());
    let (kb, n) = op_b.apply_shape(b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions disagree");
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    let av = |i: usize, l: usize| match op_a {
        GemmOp::NoTrans => a.get(i, l),
        GemmOp::Trans => a.get(l, i),
    };
    let bv = |l: usize, j: usize| match op_b {
        GemmOp::NoTrans => b.get(l, j),
        GemmOp::Trans => b.get(j, l),
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += av(i, l) * bv(l, j);
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * acc + beta * old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::fill_random;

    fn check_against_naive(
        m: usize,
        n: usize,
        k: usize,
        op_a: GemmOp,
        op_b: GemmOp,
        alpha: f64,
        beta: f64,
    ) {
        let (ar, ac) = match op_a {
            GemmOp::NoTrans => (m, k),
            GemmOp::Trans => (k, m),
        };
        let (br, bc) = match op_b {
            GemmOp::NoTrans => (k, n),
            GemmOp::Trans => (n, k),
        };
        let mut a = Mat::<f64>::zeros(ar, ac);
        let mut b = Mat::<f64>::zeros(br, bc);
        let mut c = Mat::<f64>::zeros(m, n);
        fill_random(&mut a, 1);
        fill_random(&mut b, 2);
        fill_random(&mut c, 3);
        let mut c_ref = c.clone();

        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c);
        gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c_ref);
        let tol = 1e-12 * (k.max(1) as f64);
        assert!(
            c.max_abs_diff(&c_ref) < tol,
            "mismatch m={m} n={n} k={k} {op_a:?} {op_b:?}"
        );
    }

    #[test]
    fn matches_naive_square() {
        check_against_naive(33, 33, 33, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn matches_naive_rect_all_ops() {
        for &(op_a, op_b) in &[
            (GemmOp::NoTrans, GemmOp::NoTrans),
            (GemmOp::Trans, GemmOp::NoTrans),
            (GemmOp::NoTrans, GemmOp::Trans),
            (GemmOp::Trans, GemmOp::Trans),
        ] {
            check_against_naive(17, 29, 41, op_a, op_b, 1.0, 0.0);
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        check_against_naive(10, 12, 14, GemmOp::NoTrans, GemmOp::NoTrans, 2.5, 0.5);
        check_against_naive(10, 12, 14, GemmOp::Trans, GemmOp::Trans, -1.0, 1.0);
        check_against_naive(10, 12, 14, GemmOp::NoTrans, GemmOp::NoTrans, 0.0, 2.0);
    }

    #[test]
    fn sizes_crossing_tile_boundaries() {
        check_against_naive(65, 300, 200, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        check_against_naive(1, 1, 513, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        check_against_naive(513, 1, 1, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn degenerate_dimensions() {
        // k = 0 with beta = 0 must zero C
        let a = Mat::<f64>::zeros(3, 0);
        let b = Mat::<f64>::zeros(0, 4);
        let mut c = Mat::from_fn(3, 4, |_, _| 7.0);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));

        // m = 0 / n = 0 are no-ops
        let a = Mat::<f64>::zeros(0, 5);
        let b = Mat::<f64>::zeros(5, 4);
        let mut c = Mat::<f64>::zeros(0, 4);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn f32_instantiation() {
        let a = Mat::<f32>::from_fn(8, 8, |i, j| (i + j) as f32 * 0.25);
        let b = Mat::<f32>::from_fn(8, 8, |i, j| (i as f32 - j as f32) * 0.5);
        let mut c = Mat::<f32>::zeros(8, 8);
        let mut c_ref = Mat::<f32>::zeros(8, 8);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_ref,
        );
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Mat::<f64>::zeros(2, 3);
        let b = Mat::<f64>::zeros(4, 2);
        let mut c = Mat::<f64>::zeros(2, 2);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn op_shape_helper() {
        assert_eq!(GemmOp::NoTrans.apply_shape(2, 3), (2, 3));
        assert_eq!(GemmOp::Trans.apply_shape(2, 3), (3, 2));
        assert_eq!(GemmOp::from_flag(0), GemmOp::NoTrans);
        assert_eq!(GemmOp::from_flag(1), GemmOp::Trans);
    }
}
