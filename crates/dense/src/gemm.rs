//! Local (shared-memory) matrix multiplication.
//!
//! Plays the role of the OpenMP-parallel BLAS library in the paper's
//! artifact (§III-F: "Local (shared-memory) matrix multiplications are
//! handled by an OpenMP-parallelized BLAS library"). The implementation is
//! the classic packed-panel design:
//!
//! * [`pack`](crate::pack) copies `alpha·op(A)` into `MR`-row panels and
//!   `op(B)` into `NR`-column panels — transposes are absorbed during the
//!   copy (no full transpose is materialized) and ragged edges are
//!   zero-padded so the hot loop never branches;
//! * a register-blocked `MR×NR` [`microkernel`] accumulates over the whole
//!   inner dimension with fixed-trip loops the compiler unrolls and
//!   vectorizes, touching `(MR+NR)` loads per `MR·NR` multiply-adds instead
//!   of the 3 loads/stores per multiply-add of a saxpy-style update;
//! * row-panel chunks of `C` are distributed over the persistent
//!   [`pool`](crate::pool) worker threads (no per-call thread spawn); each
//!   chunk's product is computed into a private buffer and merged into `C`
//!   by the calling thread, so the kernel is data-race free safe Rust;
//! * the parallel width honours [`pool::gemm_threads`] — process-wide
//!   `set_gemm_threads()` / `DENSE_GEMM_THREADS`, divided per rank by
//!   `msgpass::World::run` so P ranks do not oversubscribe the host.
//!
//! Every `C` element is accumulated in the same order regardless of the
//! thread width, so results are bitwise identical for any thread count
//! (pinned by a test).

use crate::mat::Mat;
use crate::pack::{self, MR, NR};
use crate::pool;
use crate::scalar::Scalar;
use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

std::thread_local! {
    /// Reused packing buffers for the serial path (type-erased because
    /// `gemm` is generic): repeated single-thread GEMM calls skip the
    /// `(m+n)·k`-element allocation and its page faults. The parallel path
    /// cannot reuse them — its packed panels move into the `Arc`-shared
    /// job.
    static PACK_SCRATCH: RefCell<Option<Box<dyn Any>>> = const { RefCell::new(None) };
}

/// Whether an operand is used as-is or transposed (the `op()` of
/// `C = op(A) × op(B)` in the paper, eq. after (8)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GemmOp {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl GemmOp {
    /// Parses the artifact CLI's `0`/`1` convention.
    pub fn from_flag(flag: u32) -> Self {
        if flag == 0 {
            GemmOp::NoTrans
        } else {
            GemmOp::Trans
        }
    }

    /// The shape of `op(X)` given the stored shape of `X`.
    pub fn apply_shape(&self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            GemmOp::NoTrans => (rows, cols),
            GemmOp::Trans => (cols, rows),
        }
    }
}

/// A-panel strips per parallel chunk (`CHUNK_STRIPS * MR` C rows each).
const CHUNK_STRIPS: usize = 8;

/// Everything a worker needs to compute chunks of one GEMM call. `Arc`-held
/// so the type-erased pool jobs are `'static` without borrowing the
/// caller's stack.
struct GemmJob<T: Scalar> {
    pa: Vec<T>,
    pb: Vec<T>,
    m: usize,
    n: usize,
    k: usize,
    nchunks: usize,
    /// Shared chunk counter: the submitting thread and the pool workers
    /// claim chunks from the same sequence, so progress never depends on a
    /// worker being available.
    next: AtomicUsize,
}

/// The `MR×NR` register block: accumulates
/// `acc[i][j] += apanel[l][i] * bpanel[l][j]` over the full packed depth.
/// Panels are `l`-major (see [`pack`](crate::pack)), so both loads are
/// contiguous and every loop has a fixed trip count.
#[inline]
fn microkernel<T: Scalar>(apanel: &[T], bpanel: &[T], acc: &mut [[T; NR]; MR]) {
    for (al, bl) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let al: &[T; MR] = al.try_into().expect("A panel is MR-aligned");
        let bl: &[T; NR] = bl.try_into().expect("B panel is NR-aligned");
        for i in 0..MR {
            let ai = al[i];
            for j in 0..NR {
                acc[i][j] += ai * bl[j];
            }
        }
    }
}

/// Computes the product block for `chunk` (rows `chunk*CHUNK_STRIPS*MR ..`)
/// into `out` (`rows_here × n`, fully overwritten). This is
/// `alpha·op(A)·op(B)` only — `beta·C` is applied at merge time so the
/// floating-point order per element is independent of who computed the
/// chunk.
fn compute_chunk<T: Scalar>(
    pa: &[T],
    pb: &[T],
    m: usize,
    n: usize,
    k: usize,
    chunk: usize,
    out: &mut Vec<T>,
) {
    let a_strips = m.div_ceil(MR);
    let s0 = chunk * CHUNK_STRIPS;
    let s1 = (s0 + CHUNK_STRIPS).min(a_strips);
    let r0 = s0 * MR;
    let rows = (s1 * MR).min(m) - r0;
    out.clear();
    out.resize(rows * n, T::ZERO);
    let b_strips = n.div_ceil(NR);
    // B strip outer / A strip inner: the chunk's A panels stay cache-hot
    // across the whole sweep while each B strip is streamed exactly once
    // per chunk.
    for t in 0..b_strips {
        let bpanel = &pb[t * k * NR..(t + 1) * k * NR];
        let j0 = t * NR;
        let cols = NR.min(n - j0);
        for s in s0..s1 {
            let apanel = &pa[s * k * MR..(s + 1) * k * MR];
            let mut acc = [[T::ZERO; NR]; MR];
            microkernel(apanel, bpanel, &mut acc);
            // Clipped store: the zero-padded panels make the kernel
            // edge-free; partial blocks are trimmed only here.
            let ri = s * MR - r0;
            let rows_here = MR.min(rows - ri);
            for (i, acc_row) in acc.iter().enumerate().take(rows_here) {
                let dst = &mut out[(ri + i) * n + j0..(ri + i) * n + j0 + cols];
                dst.copy_from_slice(&acc_row[..cols]);
            }
        }
    }
}

/// Single-thread variant of [`compute_chunk`] + [`merge_chunk`]: stores
/// each accumulator block straight into `C` (`beta·C + acc`), skipping the
/// intermediate product buffer. Per element this performs the exact same
/// operations in the exact same order as the buffered path, so serial and
/// parallel results stay bitwise identical.
fn compute_chunk_direct<T: Scalar>(
    pa: &[T],
    pb: &[T],
    n: usize,
    k: usize,
    chunk: usize,
    beta: T,
    c: &mut Mat<T>,
) {
    let m = c.rows();
    let a_strips = m.div_ceil(MR);
    let s0 = chunk * CHUNK_STRIPS;
    let s1 = (s0 + CHUNK_STRIPS).min(a_strips);
    let b_strips = n.div_ceil(NR);
    let cm = c.as_mut_slice();
    for t in 0..b_strips {
        let bpanel = &pb[t * k * NR..(t + 1) * k * NR];
        let j0 = t * NR;
        let cols = NR.min(n - j0);
        for s in s0..s1 {
            let apanel = &pa[s * k * MR..(s + 1) * k * MR];
            let mut acc = [[T::ZERO; NR]; MR];
            microkernel(apanel, bpanel, &mut acc);
            let r0 = s * MR;
            let rows_here = MR.min(m - r0);
            for (i, acc_row) in acc.iter().enumerate().take(rows_here) {
                let dst = &mut cm[(r0 + i) * n + j0..(r0 + i) * n + j0 + cols];
                if beta == T::ZERO {
                    dst.copy_from_slice(&acc_row[..cols]);
                } else if beta == T::ONE {
                    for (d, s) in dst.iter_mut().zip(acc_row) {
                        *d += *s;
                    }
                } else {
                    for (d, s) in dst.iter_mut().zip(acc_row) {
                        *d = beta * *d + *s;
                    }
                }
            }
        }
    }
}

/// Folds one computed chunk into `C`: `c_rows = beta * c_rows + product`.
fn merge_chunk<T: Scalar>(c: &mut Mat<T>, n: usize, beta: T, chunk: usize, buf: &[T]) {
    let r0 = chunk * CHUNK_STRIPS * MR;
    let dst = &mut c.as_mut_slice()[r0 * n..r0 * n + buf.len()];
    if beta == T::ZERO {
        dst.copy_from_slice(buf);
    } else if beta == T::ONE {
        for (d, s) in dst.iter_mut().zip(buf) {
            *d += *s;
        }
    } else {
        for (d, s) in dst.iter_mut().zip(buf) {
            *d = beta * *d + *s;
        }
    }
}

fn scale_in_place<T: Scalar>(c: &mut Mat<T>, beta: T) {
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        c.as_mut_slice().fill(T::ZERO);
    } else {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
}

/// The floating-point operation count of one `m×k · k×n` GEMM — the
/// standard `2mnk` (one multiply + one add per inner-product term). This is
/// the quantity a virtual-time run charges its clock with in place of
/// executing the kernel, so it must stay the *nominal* count, independent
/// of blocking or threading.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// `C = alpha * op(A) * op(B) + beta * C`, packed, register-blocked, and
/// parallel over the persistent [`pool`](crate::pool).
///
/// Shapes after applying the ops must agree:
/// `op(A): m×k`, `op(B): k×n`, `C: m×n`.
///
/// Results are bitwise identical for any kernel-thread width.
///
/// # Panics
/// On any shape mismatch.
pub fn gemm<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    let (m, k) = op_a.apply_shape(a.rows(), a.cols());
    let (kb, n) = op_b.apply_shape(b.rows(), b.cols());
    assert_eq!(
        k, kb,
        "inner dimensions disagree: op(A) is {m}x{k}, op(B) is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C is {:?}, expected {m}x{n}", c.shape());
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == T::ZERO {
        scale_in_place(c, beta);
        return;
    }

    let a_strips = m.div_ceil(MR);
    let nchunks = a_strips.div_ceil(CHUNK_STRIPS);
    let width = pool::gemm_threads().min(nchunks).max(1);

    if width == 1 {
        PACK_SCRATCH.with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot
                .as_mut()
                .and_then(|b| b.downcast_mut::<(Vec<T>, Vec<T>)>())
                .is_none()
            {
                *slot = Some(Box::new((Vec::<T>::new(), Vec::<T>::new())));
            }
            let (pa, pb) = slot
                .as_mut()
                .and_then(|b| b.downcast_mut::<(Vec<T>, Vec<T>)>())
                .expect("scratch was just installed for this scalar type");
            pack::pack_a_into(op_a, alpha, a, m, k, pa);
            pack::pack_b_into(op_b, b, k, n, pb);
            for chunk in 0..nchunks {
                compute_chunk_direct(pa, pb, n, k, chunk, beta, c);
            }
        });
        return;
    }

    let pa = pack::pack_a(op_a, alpha, a, m, k);
    let pb = pack::pack_b(op_b, b, k, n);

    let job = Arc::new(GemmJob {
        pa,
        pb,
        m,
        n,
        k,
        nchunks,
        next: AtomicUsize::new(0),
    });
    let (tx, rx) = mpsc::channel::<(usize, Vec<T>)>();
    let tasks = (0..width - 1)
        .map(|_| {
            let job = Arc::clone(&job);
            let tx = tx.clone();
            Box::new(move || {
                loop {
                    let chunk = job.next.fetch_add(1, Ordering::Relaxed);
                    if chunk >= job.nchunks {
                        break;
                    }
                    let mut buf = Vec::new();
                    compute_chunk(&job.pa, &job.pb, job.m, job.n, job.k, chunk, &mut buf);
                    // The receiver disappears only when the caller already
                    // merged every chunk (or panicked); stop quietly.
                    if tx.send((chunk, buf)).is_err() {
                        break;
                    }
                }
            }) as pool::Job
        })
        .collect();
    drop(tx);
    pool::submit(tasks);

    // The caller claims chunks from the same counter (so it always makes
    // progress), merging its own results directly and workers' results as
    // they arrive.
    let mut merged = 0;
    let mut scratch = Vec::new();
    loop {
        let chunk = job.next.fetch_add(1, Ordering::Relaxed);
        if chunk >= nchunks {
            break;
        }
        compute_chunk(&job.pa, &job.pb, m, n, k, chunk, &mut scratch);
        merge_chunk(c, n, beta, chunk, &scratch);
        merged += 1;
    }
    while merged < nchunks {
        let (chunk, buf) = rx
            .recv()
            .expect("a dense-gemm pool worker died mid-multiply");
        merge_chunk(c, n, beta, chunk, &buf);
        merged += 1;
    }
}

/// The pre-packing kernel this repository shipped before the packed
/// rewrite, kept (single-threaded) as the honest before/after baseline for
/// `benches/local_gemm.rs`: transposes materialized up front, an `i–l–j`
/// saxpy-style update with `l`/`j` cache tiling, and the
/// vectorization-hostile `aval == 0` branch.
pub fn gemm_unpacked<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    const TILE_L: usize = 128;
    const TILE_J: usize = 256;

    let at;
    let a_eff: &Mat<T> = match op_a {
        GemmOp::NoTrans => a,
        GemmOp::Trans => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_eff: &Mat<T> = match op_b {
        GemmOp::NoTrans => b,
        GemmOp::Trans => {
            bt = b.transpose();
            &bt
        }
    };

    let (m, k) = a_eff.shape();
    let (kb, n) = b_eff.shape();
    assert_eq!(
        k, kb,
        "inner dimensions disagree: op(A) is {m}x{k}, op(B) is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C is {:?}, expected {m}x{n}", c.shape());
    if m == 0 || n == 0 {
        return;
    }

    let a_data = a_eff.as_slice();
    let b_data = b_eff.as_slice();
    let c_rows = c.as_mut_slice();
    if beta != T::ONE {
        if beta == T::ZERO {
            c_rows.fill(T::ZERO);
        } else {
            for v in c_rows.iter_mut() {
                *v *= beta;
            }
        }
    }
    if k == 0 || alpha == T::ZERO {
        return;
    }
    for l0 in (0..k).step_by(TILE_L) {
        let lmax = (l0 + TILE_L).min(k);
        for j0 in (0..n).step_by(TILE_J) {
            let jmax = (j0 + TILE_J).min(n);
            for i in 0..m {
                let c_row = &mut c_rows[i * n + j0..i * n + jmax];
                for l in l0..lmax {
                    let aval = alpha * a_data[i * k + l];
                    if aval == T::ZERO {
                        continue;
                    }
                    let b_row = &b_data[l * n + j0..l * n + jmax];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aval * *bv;
                    }
                }
            }
        }
    }
}

/// Triple-loop reference kernel, used only by tests to validate [`gemm`].
pub fn gemm_naive<T: Scalar>(
    op_a: GemmOp,
    op_b: GemmOp,
    alpha: T,
    a: &Mat<T>,
    b: &Mat<T>,
    beta: T,
    c: &mut Mat<T>,
) {
    let (m, k) = op_a.apply_shape(a.rows(), a.cols());
    let (kb, n) = op_b.apply_shape(b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions disagree");
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    let av = |i: usize, l: usize| match op_a {
        GemmOp::NoTrans => a.get(i, l),
        GemmOp::Trans => a.get(l, i),
    };
    let bv = |l: usize, j: usize| match op_b {
        GemmOp::NoTrans => b.get(l, j),
        GemmOp::Trans => b.get(j, l),
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += av(i, l) * bv(l, j);
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * acc + beta * old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::fill_random;

    fn check_against_naive(
        m: usize,
        n: usize,
        k: usize,
        op_a: GemmOp,
        op_b: GemmOp,
        alpha: f64,
        beta: f64,
    ) {
        let (ar, ac) = match op_a {
            GemmOp::NoTrans => (m, k),
            GemmOp::Trans => (k, m),
        };
        let (br, bc) = match op_b {
            GemmOp::NoTrans => (k, n),
            GemmOp::Trans => (n, k),
        };
        let mut a = Mat::<f64>::zeros(ar, ac);
        let mut b = Mat::<f64>::zeros(br, bc);
        let mut c = Mat::<f64>::zeros(m, n);
        fill_random(&mut a, 1);
        fill_random(&mut b, 2);
        fill_random(&mut c, 3);
        let mut c_ref = c.clone();
        let mut c_old = c.clone();

        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c);
        gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c_ref);
        gemm_unpacked(op_a, op_b, alpha, &a, &b, beta, &mut c_old);
        let tol = 1e-12 * (k.max(1) as f64);
        assert!(
            c.max_abs_diff(&c_ref) < tol,
            "packed vs naive mismatch m={m} n={n} k={k} {op_a:?} {op_b:?}"
        );
        assert!(
            c_old.max_abs_diff(&c_ref) < tol,
            "unpacked vs naive mismatch m={m} n={n} k={k} {op_a:?} {op_b:?}"
        );
    }

    #[test]
    fn matches_naive_square() {
        check_against_naive(33, 33, 33, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn matches_naive_rect_all_ops() {
        for &(op_a, op_b) in &[
            (GemmOp::NoTrans, GemmOp::NoTrans),
            (GemmOp::Trans, GemmOp::NoTrans),
            (GemmOp::NoTrans, GemmOp::Trans),
            (GemmOp::Trans, GemmOp::Trans),
        ] {
            check_against_naive(17, 29, 41, op_a, op_b, 1.0, 0.0);
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        check_against_naive(10, 12, 14, GemmOp::NoTrans, GemmOp::NoTrans, 2.5, 0.5);
        check_against_naive(10, 12, 14, GemmOp::Trans, GemmOp::Trans, -1.0, 1.0);
        check_against_naive(10, 12, 14, GemmOp::NoTrans, GemmOp::NoTrans, 0.0, 2.0);
    }

    #[test]
    fn sizes_crossing_block_boundaries() {
        // Around the MR/NR register blocks and the CHUNK_STRIPS*MR chunk.
        check_against_naive(65, 300, 200, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        check_against_naive(1, 1, 513, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        check_against_naive(513, 1, 1, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        for d in [MR - 1, MR, MR + 1, NR - 1, NR, NR + 1] {
            check_against_naive(d, d, d, GemmOp::NoTrans, GemmOp::NoTrans, 1.0, 0.0);
        }
        let chunk_rows = CHUNK_STRIPS * MR;
        for m in [chunk_rows - 1, chunk_rows, chunk_rows + 1, 2 * chunk_rows] {
            check_against_naive(m, 7, 9, GemmOp::Trans, GemmOp::NoTrans, 1.0, 1.0);
        }
    }

    #[test]
    fn degenerate_dimensions() {
        // k = 0 with beta = 0 must zero C
        let a = Mat::<f64>::zeros(3, 0);
        let b = Mat::<f64>::zeros(0, 4);
        let mut c = Mat::from_fn(3, 4, |_, _| 7.0);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));

        // m = 0 / n = 0 are no-ops
        let a = Mat::<f64>::zeros(0, 5);
        let b = Mat::<f64>::zeros(5, 4);
        let mut c = Mat::<f64>::zeros(0, 4);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn f32_instantiation() {
        let a = Mat::<f32>::from_fn(8, 8, |i, j| (i + j) as f32 * 0.25);
        let b = Mat::<f32>::from_fn(8, 8, |i, j| (i as f32 - j as f32) * 0.5);
        let mut c = Mat::<f32>::zeros(8, 8);
        let mut c_ref = Mat::<f32>::zeros(8, 8);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_ref,
        );
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Mat::<f64>::zeros(2, 3);
        let b = Mat::<f64>::zeros(4, 2);
        let mut c = Mat::<f64>::zeros(2, 2);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn op_shape_helper() {
        assert_eq!(GemmOp::NoTrans.apply_shape(2, 3), (2, 3));
        assert_eq!(GemmOp::Trans.apply_shape(2, 3), (3, 2));
        assert_eq!(GemmOp::from_flag(0), GemmOp::NoTrans);
        assert_eq!(GemmOp::from_flag(1), GemmOp::Trans);
    }

    #[test]
    fn forced_parallel_width_matches_serial() {
        // Pin a width wider than the host so the pool path really runs,
        // then check bitwise equality against width 1.
        let mut a = Mat::<f64>::zeros(130, 70);
        let mut b = Mat::<f64>::zeros(70, 90);
        let mut c1 = Mat::<f64>::zeros(130, 90);
        fill_random(&mut a, 11);
        fill_random(&mut b, 12);
        fill_random(&mut c1, 13);
        let mut c4 = c1.clone();

        crate::pool::set_rank_gemm_threads(Some(1));
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.5, &a, &b, 0.5, &mut c1);
        crate::pool::set_rank_gemm_threads(Some(4));
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.5, &a, &b, 0.5, &mut c4);
        crate::pool::set_rank_gemm_threads(None);
        assert_eq!(c1.as_slice(), c4.as_slice(), "thread width changed bits");
    }
}
