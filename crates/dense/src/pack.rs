//! Operand packing for the register-blocked GEMM kernel.
//!
//! The classic packed-panel design (Goto & van de Geijn; BLIS): before the
//! arithmetic starts, `op(A)` is copied into *row panels* of [`MR`]
//! consecutive rows and `op(B)` into *column panels* of [`NR`] consecutive
//! columns, both laid out so the microkernel's inner loop walks each panel
//! with stride 1. Packing is where all the irregularity is absorbed:
//!
//! * `Trans` operands are handled by index arithmetic during the copy, so
//!   the kernel never sees a strided operand and no full transpose is ever
//!   materialized;
//! * `alpha` is folded into the A panels (one multiply per element of `A`
//!   instead of one per inner-loop iteration);
//! * ragged edges are zero-padded up to the next `MR`/`NR` boundary, so the
//!   microkernel always runs fixed-trip loops — the scalar tail handling
//!   moves to the *store* of the accumulator block, not the hot loop.
//!
//! Panel layouts (`k` is the inner dimension):
//!
//! * packed A: strip `s` holds rows `s*MR .. s*MR+MR` of `op(A)`, stored
//!   `l`-major — element `(i, l)` of the strip at `(s*k + l)*MR + i`;
//! * packed B: strip `t` holds columns `t*NR .. t*NR+NR` of `op(B)`, stored
//!   `l`-major — element `(l, j)` of the strip at `(t*k + l)*NR + j`.
//!
//! Both loads in the microkernel are therefore contiguous `MR`- and
//! `NR`-wide runs advancing together down `l`.

use crate::gemm::GemmOp;
use crate::mat::Mat;
use crate::scalar::Scalar;

/// Rows per A panel strip (microkernel register-block height).
pub const MR: usize = 4;
/// Columns per B panel strip (microkernel register-block width).
///
/// `4×16` keeps the f64 accumulator block at eight 512-bit registers (or
/// sixteen 256-bit ones) — the widest shape that stays fully enregistered
/// on x86-64; anything larger spills and collapses throughput.
pub const NR: usize = 16;

/// Packs `alpha * op(A)` (`m × k` after the op) into MR-row panels.
///
/// The returned buffer has `m.div_ceil(MR) * MR * k` elements; rows beyond
/// `m` are zero.
pub fn pack_a<T: Scalar>(op: GemmOp, alpha: T, a: &Mat<T>, m: usize, k: usize) -> Vec<T> {
    // `vec![ZERO; n]` hits the zeroed-page allocation fast path; the
    // `_into` variant's resize would write the zeros explicitly.
    let mut buf = vec![T::ZERO; m.div_ceil(MR) * k * MR];
    pack_a_into(op, alpha, a, m, k, &mut buf);
    buf
}

/// [`pack_a`] into a caller-provided buffer (cleared and resized), so
/// repeated calls can reuse one allocation.
pub fn pack_a_into<T: Scalar>(
    op: GemmOp,
    alpha: T,
    a: &Mat<T>,
    m: usize,
    k: usize,
    buf: &mut Vec<T>,
) {
    let strips = m.div_ceil(MR);
    let size = strips * k * MR;
    if buf.len() == size {
        // Reused buffer: the fill loops below write every element except
        // the ragged tail strip's padding rows, so only that panel needs
        // clearing.
        if !m.is_multiple_of(MR) {
            buf[(strips - 1) * k * MR..].fill(T::ZERO);
        }
    } else {
        buf.clear();
        buf.resize(size, T::ZERO);
    }
    let src = a.as_slice();
    for s in 0..strips {
        let i0 = s * MR;
        let rows_here = MR.min(m - i0);
        let panel = &mut buf[s * k * MR..(s + 1) * k * MR];
        match op {
            // op(A)[i][l] = a[i][l]: gather MR rows, interleaving them l-major.
            GemmOp::NoTrans => {
                for di in 0..rows_here {
                    let row = &src[(i0 + di) * k..(i0 + di) * k + k];
                    for (l, &v) in row.iter().enumerate() {
                        panel[l * MR + di] = alpha * v;
                    }
                }
            }
            // op(A)[i][l] = a[l][i] (a stored k × m): each source row l
            // already holds the MR destination values contiguously.
            GemmOp::Trans => {
                for l in 0..k {
                    let run = &src[l * m + i0..l * m + i0 + rows_here];
                    for (di, &v) in run.iter().enumerate() {
                        panel[l * MR + di] = alpha * v;
                    }
                }
            }
        }
    }
}

/// Packs `op(B)` (`k × n` after the op) into NR-column panels.
///
/// The returned buffer has `n.div_ceil(NR) * NR * k` elements; columns
/// beyond `n` are zero.
pub fn pack_b<T: Scalar>(op: GemmOp, b: &Mat<T>, k: usize, n: usize) -> Vec<T> {
    let mut buf = vec![T::ZERO; n.div_ceil(NR) * k * NR];
    pack_b_into(op, b, k, n, &mut buf);
    buf
}

/// [`pack_b`] into a caller-provided buffer (cleared and resized), so
/// repeated calls can reuse one allocation.
pub fn pack_b_into<T: Scalar>(op: GemmOp, b: &Mat<T>, k: usize, n: usize, buf: &mut Vec<T>) {
    let strips = n.div_ceil(NR);
    let size = strips * k * NR;
    if buf.len() == size {
        if !n.is_multiple_of(NR) {
            buf[(strips - 1) * k * NR..].fill(T::ZERO);
        }
    } else {
        buf.clear();
        buf.resize(size, T::ZERO);
    }
    let src = b.as_slice();
    for t in 0..strips {
        let j0 = t * NR;
        let cols_here = NR.min(n - j0);
        let panel = &mut buf[t * k * NR..(t + 1) * k * NR];
        match op {
            // op(B)[l][j] = b[l][j]: each source row l holds the NR
            // destination values contiguously.
            GemmOp::NoTrans => {
                for l in 0..k {
                    let run = &src[l * n + j0..l * n + j0 + cols_here];
                    panel[l * NR..l * NR + cols_here].copy_from_slice(run);
                }
            }
            // op(B)[l][j] = b[j][l] (b stored n × k): gather NR rows,
            // interleaving them l-major.
            GemmOp::Trans => {
                for dj in 0..cols_here {
                    let row = &src[(j0 + dj) * k..(j0 + dj) * k + k];
                    for (l, &v) in row.iter().enumerate() {
                        panel[l * NR + dj] = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_a_ref(op: GemmOp, a: &Mat<f64>, i: usize, l: usize) -> f64 {
        match op {
            GemmOp::NoTrans => a.get(i, l),
            GemmOp::Trans => a.get(l, i),
        }
    }

    #[test]
    fn pack_a_layout_and_padding() {
        let (m, k) = (MR + 1, 3); // one full strip + a 1-row tail strip
        for op in [GemmOp::NoTrans, GemmOp::Trans] {
            let a = match op {
                GemmOp::NoTrans => Mat::from_fn(m, k, |i, j| (i * 10 + j) as f64),
                GemmOp::Trans => Mat::from_fn(k, m, |i, j| (j * 10 + i) as f64),
            };
            let buf = pack_a(op, 1.0, &a, m, k);
            assert_eq!(buf.len(), 2 * k * MR);
            for s in 0..2 {
                for l in 0..k {
                    for di in 0..MR {
                        let want = if s * MR + di < m {
                            op_a_ref(op, &a, s * MR + di, l)
                        } else {
                            0.0
                        };
                        assert_eq!(
                            buf[(s * k + l) * MR + di],
                            want,
                            "{op:?} s={s} l={l} i={di}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pack_a_folds_alpha() {
        let a = Mat::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f64);
        let buf = pack_a(GemmOp::NoTrans, 3.0, &a, 2, 2);
        assert_eq!(buf[0], 3.0); // (0,0) * alpha
        assert_eq!(buf[MR], 6.0); // (0,1) * alpha at l=1
    }

    #[test]
    fn pack_b_layout_and_padding() {
        let (k, n) = (3usize, NR + 2); // one full strip + a 2-col tail strip
        for op in [GemmOp::NoTrans, GemmOp::Trans] {
            let b = match op {
                GemmOp::NoTrans => Mat::from_fn(k, n, |i, j| (i * 100 + j) as f64),
                GemmOp::Trans => Mat::from_fn(n, k, |i, j| (j * 100 + i) as f64),
            };
            let buf = pack_b(op, &b, k, n);
            assert_eq!(buf.len(), 2 * k * NR);
            for t in 0..2 {
                for l in 0..k {
                    for dj in 0..NR {
                        let want = if t * NR + dj < n {
                            (l * 100 + t * NR + dj) as f64
                        } else {
                            0.0
                        };
                        assert_eq!(
                            buf[(t * k + l) * NR + dj],
                            want,
                            "{op:?} t={t} l={l} j={dj}"
                        );
                    }
                }
            }
        }
    }
}
