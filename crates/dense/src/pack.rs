//! Operand packing for the register-blocked GEMM kernel.
//!
//! The classic packed-panel design (Goto & van de Geijn; BLIS): before the
//! arithmetic starts, a block of `op(A)` is copied into *row panels* of
//! [`MR`] consecutive rows and a slab of `op(B)` into *column panels* of
//! [`NR`] consecutive columns, both laid out so the microkernel's inner
//! loop walks each panel with stride 1. Packing is where all the
//! irregularity is absorbed:
//!
//! * `Trans` operands are handled by index arithmetic during the copy, so
//!   the kernel never sees a strided operand and no full transpose is ever
//!   materialized;
//! * `alpha` is folded into the A panels (one multiply per element of `A`
//!   instead of one per inner-loop iteration);
//! * ragged edges are zero-padded up to the next `MR`/`NR` boundary, so the
//!   microkernel always runs fixed-trip loops — the scalar tail handling
//!   moves to the *store* of the accumulator block, not the hot loop.
//!
//! Since the five-loop blocked rewrite the packers are *block-wise*: the
//! unit of A packing is an `MC×KC` block ([`pack_a_block_into`]) and the
//! unit of B packing is a single `KC×NR` strip ([`pack_b_strip_into`]), so
//! a GEMM call only ever materializes one cache-sized slab of each operand
//! (never a full `m×k`/`k×n` packed copy) and the strips can be packed in
//! parallel by the [`pool`](crate::pool) workers. The whole-operand
//! packers ([`pack_a`] / [`pack_b`]) remain as the degenerate one-block
//! case for tests and callers that want the full panels.
//!
//! Since the dispatched-microkernel rewrite the panel geometry is a
//! *runtime parameter*: the block/strip packers take the `mr`/`nr` of the
//! [`kernel`](crate::kernel) selected for the call, because each kernel
//! has its own register-block shape. The [`MR`]/[`NR`] constants remain as
//! the portable kernel's geometry (and the whole-operand packers' fixed
//! shape).
//!
//! Panel layouts (`kk` is the packed depth of the slab, `mr`/`nr` the
//! selected kernel's register-block shape):
//!
//! * packed A block: strip `s` holds rows `s*mr .. s*mr+mr` of the block,
//!   stored `l`-major — element `(i, l)` of the strip at `(s*kk + l)*mr + i`;
//! * packed B slab: strip `t` holds columns `t*nr .. t*nr+nr` of the slab,
//!   stored `l`-major — element `(l, j)` of the strip at `(t*kk + l)*nr + j`.
//!
//! Both loads in the microkernel are therefore contiguous `mr`- and
//! `nr`-wide runs advancing together down `l`.

use crate::gemm::GemmOp;
use crate::mat::Mat;
use crate::scalar::Scalar;

/// Rows per A panel strip for the *portable* kernel (and the whole-operand
/// packers). The block/strip packers take the selected kernel's `mr`
/// instead — see [`kernel::KernelKind::geom`](crate::kernel::KernelKind::geom).
pub const MR: usize = 4;
/// Columns per B panel strip for the *portable* kernel.
///
/// `4×16` keeps the f64 accumulator block at eight 512-bit registers (or
/// sixteen 256-bit ones) — the widest shape that stays fully enregistered
/// on x86-64 when the autovectorizer carries the tile; the intrinsics
/// kernels use their own shapes.
pub const NR: usize = 16;

/// Packs the `rows × kk` block of `alpha * op(A)` starting at row `i0`,
/// depth `p0`, into `mr`-row panels in `buf`.
///
/// `buf` must hold exactly `rows.div_ceil(mr) * kk * mr` elements; every
/// element is written (rows beyond `rows` are zeroed), so the buffer needs
/// no pre-clearing.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_block_into<T: Scalar>(
    op: GemmOp,
    alpha: T,
    a: &Mat<T>,
    i0: usize,
    p0: usize,
    rows: usize,
    kk: usize,
    mr: usize,
    buf: &mut [T],
) {
    let strips = rows.div_ceil(mr);
    assert_eq!(buf.len(), strips * kk * mr, "A pack buffer size mismatch");
    let ld = a.cols();
    let src = a.as_slice();
    for s in 0..strips {
        let r0 = s * mr;
        let rows_here = mr.min(rows - r0);
        let panel = &mut buf[s * kk * mr..(s + 1) * kk * mr];
        if rows_here < mr {
            panel.fill(T::ZERO);
        }
        match op {
            // op(A)[i][l] = a[i][l]: gather mr rows, interleaving them
            // l-major.
            GemmOp::NoTrans => {
                for di in 0..rows_here {
                    let row = &src[(i0 + r0 + di) * ld + p0..(i0 + r0 + di) * ld + p0 + kk];
                    for (l, &v) in row.iter().enumerate() {
                        panel[l * mr + di] = alpha * v;
                    }
                }
            }
            // op(A)[i][l] = a[l][i] (a stored k × m): each source row l
            // already holds the mr destination values contiguously.
            GemmOp::Trans => {
                for l in 0..kk {
                    let run = &src[(p0 + l) * ld + i0 + r0..(p0 + l) * ld + i0 + r0 + rows_here];
                    for (di, &v) in run.iter().enumerate() {
                        panel[l * mr + di] = alpha * v;
                    }
                }
            }
        }
    }
}

/// Packs one `kk × nr` strip of `op(B)` — columns `j0 .. j0+cols_here`,
/// depth `p0 .. p0+kk` — into `buf` (`kk * nr` elements, `l`-major).
///
/// Every element is written (columns beyond `cols_here` are zeroed), so
/// strips can be packed independently — and therefore in parallel — into
/// disjoint regions of one slab buffer.
#[allow(clippy::too_many_arguments)]
pub fn pack_b_strip_into<T: Scalar>(
    op: GemmOp,
    b: &Mat<T>,
    p0: usize,
    j0: usize,
    kk: usize,
    cols_here: usize,
    nr: usize,
    buf: &mut [T],
) {
    assert_eq!(buf.len(), kk * nr, "B strip buffer size mismatch");
    let ld = b.cols();
    let src = b.as_slice();
    match op {
        // op(B)[l][j] = b[l][j]: each source row l holds the nr destination
        // values contiguously.
        GemmOp::NoTrans => {
            for l in 0..kk {
                let run = &src[(p0 + l) * ld + j0..(p0 + l) * ld + j0 + cols_here];
                let dst = &mut buf[l * nr..(l + 1) * nr];
                dst[..cols_here].copy_from_slice(run);
                dst[cols_here..].fill(T::ZERO);
            }
        }
        // op(B)[l][j] = b[j][l] (b stored n × k): gather nr rows,
        // interleaving them l-major.
        GemmOp::Trans => {
            if cols_here < nr {
                buf.fill(T::ZERO);
            }
            for dj in 0..cols_here {
                let row = &src[(j0 + dj) * ld + p0..(j0 + dj) * ld + p0 + kk];
                for (l, &v) in row.iter().enumerate() {
                    buf[l * nr + dj] = v;
                }
            }
        }
    }
}

/// Packs all of `alpha * op(A)` (`m × k` after the op) into MR-row panels.
///
/// The returned buffer has `m.div_ceil(MR) * MR * k` elements; rows beyond
/// `m` are zero. This is the degenerate one-block case of
/// [`pack_a_block_into`], kept for tests and whole-operand callers.
pub fn pack_a<T: Scalar>(op: GemmOp, alpha: T, a: &Mat<T>, m: usize, k: usize) -> Vec<T> {
    let mut buf = vec![T::ZERO; m.div_ceil(MR) * k * MR];
    pack_a_into(op, alpha, a, m, k, &mut buf);
    buf
}

/// [`pack_a`] into a caller-provided buffer (cleared and resized), so
/// repeated calls can reuse one allocation.
pub fn pack_a_into<T: Scalar>(
    op: GemmOp,
    alpha: T,
    a: &Mat<T>,
    m: usize,
    k: usize,
    buf: &mut Vec<T>,
) {
    let size = m.div_ceil(MR) * k * MR;
    buf.clear();
    buf.resize(size, T::ZERO);
    pack_a_block_into(op, alpha, a, 0, 0, m, k, MR, buf);
}

/// Packs all of `op(B)` (`k × n` after the op) into NR-column panels.
///
/// The returned buffer has `n.div_ceil(NR) * NR * k` elements; columns
/// beyond `n` are zero.
pub fn pack_b<T: Scalar>(op: GemmOp, b: &Mat<T>, k: usize, n: usize) -> Vec<T> {
    let mut buf = vec![T::ZERO; n.div_ceil(NR) * k * NR];
    pack_b_into(op, b, k, n, &mut buf);
    buf
}

/// [`pack_b`] into a caller-provided buffer (cleared and resized), so
/// repeated calls can reuse one allocation.
pub fn pack_b_into<T: Scalar>(op: GemmOp, b: &Mat<T>, k: usize, n: usize, buf: &mut Vec<T>) {
    let strips = n.div_ceil(NR);
    let size = strips * k * NR;
    buf.clear();
    buf.resize(size, T::ZERO);
    for t in 0..strips {
        let j0 = t * NR;
        let cols_here = NR.min(n - j0);
        pack_b_strip_into(
            op,
            b,
            0,
            j0,
            k,
            cols_here,
            NR,
            &mut buf[t * k * NR..(t + 1) * k * NR],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_a_ref(op: GemmOp, a: &Mat<f64>, i: usize, l: usize) -> f64 {
        match op {
            GemmOp::NoTrans => a.get(i, l),
            GemmOp::Trans => a.get(l, i),
        }
    }

    #[test]
    fn pack_a_layout_and_padding() {
        let (m, k) = (MR + 1, 3); // one full strip + a 1-row tail strip
        for op in [GemmOp::NoTrans, GemmOp::Trans] {
            let a = match op {
                GemmOp::NoTrans => Mat::from_fn(m, k, |i, j| (i * 10 + j) as f64),
                GemmOp::Trans => Mat::from_fn(k, m, |i, j| (j * 10 + i) as f64),
            };
            let buf = pack_a(op, 1.0, &a, m, k);
            assert_eq!(buf.len(), 2 * k * MR);
            for s in 0..2 {
                for l in 0..k {
                    for di in 0..MR {
                        let want = if s * MR + di < m {
                            op_a_ref(op, &a, s * MR + di, l)
                        } else {
                            0.0
                        };
                        assert_eq!(
                            buf[(s * k + l) * MR + di],
                            want,
                            "{op:?} s={s} l={l} i={di}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pack_a_folds_alpha() {
        let a = Mat::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f64);
        let buf = pack_a(GemmOp::NoTrans, 3.0, &a, 2, 2);
        assert_eq!(buf[0], 3.0); // (0,0) * alpha
        assert_eq!(buf[MR], 6.0); // (0,1) * alpha at l=1
    }

    #[test]
    fn pack_b_layout_and_padding() {
        let (k, n) = (3usize, NR + 2); // one full strip + a 2-col tail strip
        for op in [GemmOp::NoTrans, GemmOp::Trans] {
            let b = match op {
                GemmOp::NoTrans => Mat::from_fn(k, n, |i, j| (i * 100 + j) as f64),
                GemmOp::Trans => Mat::from_fn(n, k, |i, j| (j * 100 + i) as f64),
            };
            let buf = pack_b(op, &b, k, n);
            assert_eq!(buf.len(), 2 * k * NR);
            for t in 0..2 {
                for l in 0..k {
                    for dj in 0..NR {
                        let want = if t * NR + dj < n {
                            (l * 100 + t * NR + dj) as f64
                        } else {
                            0.0
                        };
                        assert_eq!(
                            buf[(t * k + l) * NR + dj],
                            want,
                            "{op:?} t={t} l={l} j={dj}"
                        );
                    }
                }
            }
        }
    }

    /// A sub-block pack must equal the corresponding window of the
    /// whole-operand pack — the interior-block case the five-loop kernel
    /// depends on.
    #[test]
    fn pack_a_block_matches_full_pack_window() {
        let (m, k) = (3 * MR + 2, 17);
        let (i0, p0, rows, kk) = (MR, 5, MR + 3, 7); // unaligned interior
        for op in [GemmOp::NoTrans, GemmOp::Trans] {
            let a = match op {
                GemmOp::NoTrans => Mat::from_fn(m, k, |i, j| (i * 31 + j) as f64),
                GemmOp::Trans => Mat::from_fn(k, m, |i, j| (j * 31 + i) as f64),
            };
            let mut buf = vec![9.0; rows.div_ceil(MR) * kk * MR];
            pack_a_block_into(op, 2.0, &a, i0, p0, rows, kk, MR, &mut buf);
            for s in 0..rows.div_ceil(MR) {
                for l in 0..kk {
                    for di in 0..MR {
                        let want = if s * MR + di < rows {
                            2.0 * op_a_ref(op, &a, i0 + s * MR + di, p0 + l)
                        } else {
                            0.0
                        };
                        assert_eq!(
                            buf[(s * kk + l) * MR + di],
                            want,
                            "{op:?} s={s} l={l} i={di}"
                        );
                    }
                }
            }
        }
    }

    /// The packers honor a non-default (runtime) kernel geometry: layout
    /// and zero-padding follow the passed `mr`/`nr`, not the constants.
    #[test]
    fn pack_with_runtime_geometry() {
        let (mr, nr) = (6usize, 12usize);
        // A: mr+2 rows -> one full strip + a 2-row tail strip.
        let (rows, kk) = (mr + 2, 5usize);
        let a = Mat::from_fn(rows, kk, |i, j| (i * 10 + j) as f64);
        let mut abuf = vec![9.0; rows.div_ceil(mr) * kk * mr];
        pack_a_block_into(GemmOp::NoTrans, 1.0, &a, 0, 0, rows, kk, mr, &mut abuf);
        for s in 0..rows.div_ceil(mr) {
            for l in 0..kk {
                for di in 0..mr {
                    let want = if s * mr + di < rows {
                        ((s * mr + di) * 10 + l) as f64
                    } else {
                        0.0
                    };
                    assert_eq!(abuf[(s * kk + l) * mr + di], want, "s={s} l={l} i={di}");
                }
            }
        }
        // B: a ragged strip of 7 of nr=12 columns.
        let b = Mat::from_fn(kk, nr + 7, |i, j| (i * 100 + j) as f64);
        let mut bbuf = vec![7.0; kk * nr];
        pack_b_strip_into(GemmOp::NoTrans, &b, 0, nr, kk, 7, nr, &mut bbuf);
        for l in 0..kk {
            for dj in 0..nr {
                let want = if dj < 7 {
                    (l * 100 + nr + dj) as f64
                } else {
                    0.0
                };
                assert_eq!(bbuf[l * nr + dj], want, "l={l} j={dj}");
            }
        }
    }

    /// Strip packing at an interior (p0, j0) offset, including the padded
    /// ragged-tail case, for both ops.
    #[test]
    fn pack_b_strip_interior_offsets() {
        let (k, n) = (11usize, 2 * NR + 5);
        let (p0, kk) = (3usize, 6usize);
        for op in [GemmOp::NoTrans, GemmOp::Trans] {
            let b = match op {
                GemmOp::NoTrans => Mat::from_fn(k, n, |i, j| (i * 100 + j) as f64),
                GemmOp::Trans => Mat::from_fn(n, k, |i, j| (j * 100 + i) as f64),
            };
            for (j0, cols_here) in [(NR, NR), (2 * NR, 5)] {
                let mut buf = vec![7.0; kk * NR];
                pack_b_strip_into(op, &b, p0, j0, kk, cols_here, NR, &mut buf);
                for l in 0..kk {
                    for dj in 0..NR {
                        let want = if dj < cols_here {
                            ((p0 + l) * 100 + j0 + dj) as f64
                        } else {
                            0.0
                        };
                        assert_eq!(buf[l * NR + dj], want, "{op:?} j0={j0} l={l} j={dj}");
                    }
                }
            }
        }
    }
}
