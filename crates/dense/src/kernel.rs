//! Architecture-specialized register microkernels with runtime dispatch.
//!
//! The five-loop GEMM in [`gemm`](crate::gemm) spends essentially all of
//! its arithmetic inside one `MR×NR` register block. This module provides
//! that block in several flavors and picks one at runtime:
//!
//! | kernel     | f64 `MR×NR` | f32 `MR×NR` | discipline      | requires            |
//! |------------|-------------|-------------|-----------------|---------------------|
//! | `portable` | 4×16        | 4×16        | mul + add       | nothing (fallback)  |
//! | `avx2`     | 4×12        | 6×16        | fused (FMA)     | AVX2 + FMA          |
//! | `avx512`   | 8×16        | 12×32       | fused (FMA)     | AVX-512F, rustc ≥ 1.89 |
//!
//! The `avx2`/`avx512` kernels are written directly against
//! `core::arch::x86_64` intrinsics with `#[target_feature]`; the tile
//! shapes are chosen to fill (but not spill) the architectural register
//! file: the `avx2` f64 tile is a 4×3 grid of `ymm` accumulators plus
//! three B loads and one A broadcast — exactly 16 `ymm` registers — and
//! the `avx512` f32 tile widens `MR` to 12 (24 `zmm` accumulators out of
//! 32) because 16-lane vectors starve a narrow tile of A reuse.
//!
//! # Selection
//!
//! [`gemm_kernel`] resolves, in precedence order:
//!
//! 1. a *per-thread* pin from [`set_gemm_kernel`] (tests/benches compare
//!    kernels without racing each other);
//! 2. the `DENSE_GEMM_KERNEL=portable|avx2|avx512` environment variable,
//!    read once (malformed or unsupported values warn once and fall
//!    through);
//! 3. the widest kernel the host supports, derived from
//!    [`tune::cache_info`](crate::tune::cache_info)'s SIMD probe — probed
//!    once per process.
//!
//! The selected kernel's geometry parameterizes packing
//! ([`pack`](crate::pack)), blocking derivation and the roofline peak
//! probe ([`tune`](crate::tune)), and is recorded by the profiler
//! ([`prof`](crate::prof)) and every report that carries GEMM numbers.
//!
//! # Determinism contract
//!
//! *Within one kernel*, every `C` element is accumulated in the same order
//! regardless of thread width (the order depends only on the `KC` slab
//! sequence and the in-slab `l` order — see [`gemm`](crate::gemm)), so
//! results are bitwise identical across widths *per kernel*. Different
//! kernels are **not** bitwise identical to each other: the SIMD kernels
//! use fused multiply-add (one rounding per term instead of two), so
//! cross-kernel agreement is ulp-bounded, not exact. Artifacts therefore
//! record which kernel produced them.

use crate::scalar::Scalar;
use std::any::TypeId;
use std::sync::OnceLock;

/// Largest `MR` over every kernel geometry.
pub const MAX_MR: usize = 12;
/// Largest `NR` over every kernel geometry.
pub const MAX_NR: usize = 32;
/// Largest `MR·NR` accumulator tile over every kernel geometry (the
/// stack-buffer bound the macro-kernel allocates once per call).
pub const MAX_ACC: usize = 384;

/// One register-microkernel implementation (see the module table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// The generic `Scalar` loop (autovectorized, separate mul + add).
    Portable,
    /// `core::arch::x86_64` AVX2+FMA intrinsics.
    Avx2,
    /// AVX-512F intrinsics with a wider-MR f32 tile. Only compiled on
    /// rustc ≥ 1.89 (AVX-512 intrinsics stabilization); otherwise never
    /// offered.
    Avx512,
}

impl KernelKind {
    /// Every kind, widest last (selection order is the reverse).
    pub const ALL: [KernelKind; 3] = [KernelKind::Portable, KernelKind::Avx2, KernelKind::Avx512];

    /// Stable lowercase name — the `DENSE_GEMM_KERNEL` vocabulary and what
    /// reports/benches record.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Portable => "portable",
            KernelKind::Avx2 => "avx2",
            KernelKind::Avx512 => "avx512",
        }
    }

    /// Parses a [`name`](Self::name); `None` on anything else.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim() {
            "portable" => Some(KernelKind::Portable),
            "avx2" => Some(KernelKind::Avx2),
            "avx512" => Some(KernelKind::Avx512),
            _ => None,
        }
    }

    /// Dense index for per-kernel caches (`0..ALL.len()`).
    pub(crate) fn index(self) -> usize {
        match self {
            KernelKind::Portable => 0,
            KernelKind::Avx2 => 1,
            KernelKind::Avx512 => 2,
        }
    }

    /// Whether this host (and this compiler) can run the kernel.
    pub fn available(self) -> bool {
        match self {
            KernelKind::Portable => true,
            KernelKind::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Avx512 => {
                #[cfg(all(target_arch = "x86_64", dense_avx512))]
                {
                    std::arch::is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(all(target_arch = "x86_64", dense_avx512)))]
                {
                    false
                }
            }
        }
    }

    /// Whether the kernel contracts `a*b + c` into a fused multiply-add
    /// (one rounding per term). Kernels that disagree here are equivalent
    /// only up to an ulp bound, never bitwise.
    pub fn fused_mul_add(self) -> bool {
        !matches!(self, KernelKind::Portable)
    }

    /// The `(MR, NR)` register-block geometry for `elem`-byte scalars.
    pub fn geom(self, elem: usize) -> (usize, usize) {
        match (self, elem) {
            (KernelKind::Portable, _) => (crate::pack::MR, crate::pack::NR),
            (KernelKind::Avx2, 8) => (4, 12),
            (KernelKind::Avx2, _) => (6, 16),
            (KernelKind::Avx512, 8) => (8, 16),
            (KernelKind::Avx512, _) => (12, 32),
        }
    }
}

std::thread_local! {
    /// Per-thread pin from [`set_gemm_kernel`]; `None` = unset.
    static THREAD_KERNEL: std::cell::Cell<Option<KernelKind>> =
        const { std::cell::Cell::new(None) };
}

/// Pins (or with `None` clears) the microkernel used by GEMM calls made
/// *from the current thread* — resolved at the call site, before work fans
/// out to the pool, exactly like [`tune::set_gemm_blocking`]
/// (crate::tune::set_gemm_blocking). Takes precedence over
/// `DENSE_GEMM_KERNEL` and the probed default.
///
/// # Panics
/// If the requested kernel is not [`available`](KernelKind::available) on
/// this host — a pinned-but-unrunnable kernel is a programming error, not
/// a fallback situation (the env var, by contrast, warns and falls back).
pub fn set_gemm_kernel(k: Option<KernelKind>) {
    if let Some(k) = k {
        assert!(
            k.available(),
            "set_gemm_kernel({:?}): kernel unavailable on this host",
            k
        );
    }
    THREAD_KERNEL.with(|c| c.set(k));
}

/// The `DENSE_GEMM_KERNEL` override, read and validated once. Malformed or
/// unavailable values are reported to stderr once and ignored.
fn env_kernel() -> Option<KernelKind> {
    static ENV: OnceLock<Option<KernelKind>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("DENSE_GEMM_KERNEL").ok()?;
        match KernelKind::parse(&raw) {
            Some(k) if k.available() => Some(k),
            Some(k) => {
                eprintln!(
                    "dense: DENSE_GEMM_KERNEL={} requested but unavailable on this host; \
                     using the probed default",
                    k.name()
                );
                None
            }
            None => {
                eprintln!(
                    "dense: ignoring malformed DENSE_GEMM_KERNEL={raw:?} \
                     (expected portable|avx2|avx512)"
                );
                None
            }
        }
    })
}

/// The widest available kernel, chosen once per process from
/// [`tune::cache_info`](crate::tune::cache_info)'s SIMD width probe.
fn auto_kernel() -> KernelKind {
    static AUTO: OnceLock<KernelKind> = OnceLock::new();
    *AUTO.get_or_init(|| {
        let bits = crate::tune::cache_info().simd_bits;
        if bits >= 512 && KernelKind::Avx512.available() {
            KernelKind::Avx512
        } else if bits >= 256 && KernelKind::Avx2.available() {
            KernelKind::Avx2
        } else {
            KernelKind::Portable
        }
    })
}

/// The microkernel the next GEMM call from this thread will dispatch to:
/// [`set_gemm_kernel`] pin > `DENSE_GEMM_KERNEL` > probed default.
pub fn gemm_kernel() -> KernelKind {
    if let Some(k) = THREAD_KERNEL.with(|c| c.get()) {
        return k;
    }
    env_kernel().unwrap_or_else(auto_kernel)
}

/// [`gemm_kernel`] guarded by scalar type: the intrinsics kernels exist
/// only for `f32`/`f64`, so any other `Scalar` falls back to the portable
/// kernel (and the portable geometry) regardless of selection.
pub(crate) fn gemm_kernel_for<T: Scalar>() -> KernelKind {
    if TypeId::of::<T>() == TypeId::of::<f64>() || TypeId::of::<T>() == TypeId::of::<f32>() {
        gemm_kernel()
    } else {
        KernelKind::Portable
    }
}

/// Runs kernel `kind` over one packed A panel (`kk·MR`, `l`-major) and one
/// packed B panel (`kk·NR`, `l`-major), accumulating into the row-major
/// `MR×NR` tile at `acc[..mr*nr]`:
/// `acc[i*nr + j] += Σ_l apanel[l*mr + i] · bpanel[l*nr + j]`.
///
/// `kind` must be [`available`](KernelKind::available) — the selection
/// layer guarantees this — and the panels must carry `kind`'s geometry for
/// this scalar type.
#[inline]
pub(crate) fn microkernel<T: Scalar>(
    kind: KernelKind,
    apanel: &[T],
    bpanel: &[T],
    kk: usize,
    acc: &mut [T],
) {
    let (mr, nr) = kind.geom(std::mem::size_of::<T>());
    debug_assert!(apanel.len() >= kk * mr && bpanel.len() >= kk * nr);
    debug_assert!(acc.len() >= mr * nr);
    let is_f64 = TypeId::of::<T>() == TypeId::of::<f64>();
    match kind {
        KernelKind::Portable => microkernel_portable(apanel, bpanel, acc),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => {
            // SAFETY: selection guarantees AVX2+FMA are present;
            // `gemm_kernel_for` guarantees T is exactly f64 or f32, so the
            // pointer casts reinterpret same-layout slices; panel/acc sizes
            // were checked against this kernel's geometry above.
            unsafe {
                if is_f64 {
                    mk_avx2_f64(
                        apanel.as_ptr().cast(),
                        bpanel.as_ptr().cast(),
                        kk,
                        acc.as_mut_ptr().cast(),
                    );
                } else {
                    mk_avx2_f32(
                        apanel.as_ptr().cast(),
                        bpanel.as_ptr().cast(),
                        kk,
                        acc.as_mut_ptr().cast(),
                    );
                }
            }
        }
        #[cfg(all(target_arch = "x86_64", dense_avx512))]
        KernelKind::Avx512 => {
            // SAFETY: as for Avx2, with AVX-512F guaranteed by selection.
            unsafe {
                if is_f64 {
                    mk_avx512_f64(
                        apanel.as_ptr().cast(),
                        bpanel.as_ptr().cast(),
                        kk,
                        acc.as_mut_ptr().cast(),
                    );
                } else {
                    mk_avx512_f32(
                        apanel.as_ptr().cast(),
                        bpanel.as_ptr().cast(),
                        kk,
                        acc.as_mut_ptr().cast(),
                    );
                }
            }
        }
        #[cfg(not(all(target_arch = "x86_64", dense_avx512)))]
        #[allow(unreachable_patterns)]
        _ => unreachable!("selected kernel {:?} is not compiled in", kind),
    }
}

/// The portable fallback: the pre-dispatch generic register block,
/// bit-identical to what every prior release computed. Separate multiply
/// and add (no contraction: Rust never fuses float ops implicitly), `l`
/// ascending, rows outer — the summation-order contract every kernel
/// honors.
fn microkernel_portable<T: Scalar>(apanel: &[T], bpanel: &[T], acc: &mut [T]) {
    use crate::pack::{MR, NR};
    for (al, bl) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let bl: &[T; NR] = bl.try_into().expect("B panel is NR-aligned");
        for (i, &ai) in al.iter().enumerate() {
            let row = &mut acc[i * NR..(i + 1) * NR];
            for (c, &b) in row.iter_mut().zip(bl) {
                *c += ai * b;
            }
        }
    }
}

/// AVX2+FMA f64 kernel, 4×12 tile: a 4×3 grid of `ymm` accumulators (12)
/// plus three B loads and one A broadcast fills the 16-register `ymm` file
/// exactly.
///
/// # Safety
/// AVX2 and FMA must be available. `ap`/`bp` must hold `kk·4` / `kk·12`
/// `l`-major packed elements; `acc` a writable row-major 4×12 tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mk_avx2_f64(ap: *const f64, bp: *const f64, kk: usize, acc: *mut f64) {
    use core::arch::x86_64::*;
    let mut c = [[_mm256_setzero_pd(); 3]; 4];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, r) in row.iter_mut().enumerate() {
            *r = _mm256_loadu_pd(acc.add(i * 12 + j * 4));
        }
    }
    for l in 0..kk {
        let b0 = _mm256_loadu_pd(bp.add(l * 12));
        let b1 = _mm256_loadu_pd(bp.add(l * 12 + 4));
        let b2 = _mm256_loadu_pd(bp.add(l * 12 + 8));
        for (i, row) in c.iter_mut().enumerate() {
            let a = _mm256_set1_pd(*ap.add(l * 4 + i));
            row[0] = _mm256_fmadd_pd(a, b0, row[0]);
            row[1] = _mm256_fmadd_pd(a, b1, row[1]);
            row[2] = _mm256_fmadd_pd(a, b2, row[2]);
        }
    }
    for (i, row) in c.iter().enumerate() {
        for (j, r) in row.iter().enumerate() {
            _mm256_storeu_pd(acc.add(i * 12 + j * 4), *r);
        }
    }
}

/// AVX2+FMA f32 kernel, 6×16 tile: a 6×2 grid of `ymm` accumulators (12)
/// plus two B loads and one A broadcast — 15 of 16 `ymm` registers.
///
/// # Safety
/// As [`mk_avx2_f64`], with `kk·6` / `kk·16` panels and a 6×16 tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mk_avx2_f32(ap: *const f32, bp: *const f32, kk: usize, acc: *mut f32) {
    use core::arch::x86_64::*;
    let mut c = [[_mm256_setzero_ps(); 2]; 6];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, r) in row.iter_mut().enumerate() {
            *r = _mm256_loadu_ps(acc.add(i * 16 + j * 8));
        }
    }
    for l in 0..kk {
        let b0 = _mm256_loadu_ps(bp.add(l * 16));
        let b1 = _mm256_loadu_ps(bp.add(l * 16 + 8));
        for (i, row) in c.iter_mut().enumerate() {
            let a = _mm256_set1_ps(*ap.add(l * 6 + i));
            row[0] = _mm256_fmadd_ps(a, b0, row[0]);
            row[1] = _mm256_fmadd_ps(a, b1, row[1]);
        }
    }
    for (i, row) in c.iter().enumerate() {
        for (j, r) in row.iter().enumerate() {
            _mm256_storeu_ps(acc.add(i * 16 + j * 8), *r);
        }
    }
}

/// AVX-512F f64 kernel, 8×16 tile: an 8×2 grid of `zmm` accumulators (16
/// of 32) plus two B loads and one A broadcast.
///
/// # Safety
/// AVX-512F must be available; `kk·8` / `kk·16` panels, 8×16 tile.
#[cfg(all(target_arch = "x86_64", dense_avx512))]
#[target_feature(enable = "avx512f")]
// The AVX-512 intrinsics stabilized in 1.89 > MSRV, but this whole fn only
// compiles under `dense_avx512`, which build.rs emits on rustc >= 1.89.
#[allow(clippy::incompatible_msrv)]
unsafe fn mk_avx512_f64(ap: *const f64, bp: *const f64, kk: usize, acc: *mut f64) {
    use core::arch::x86_64::*;
    let mut c = [[_mm512_setzero_pd(); 2]; 8];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, r) in row.iter_mut().enumerate() {
            *r = _mm512_loadu_pd(acc.add(i * 16 + j * 8));
        }
    }
    for l in 0..kk {
        let b0 = _mm512_loadu_pd(bp.add(l * 16));
        let b1 = _mm512_loadu_pd(bp.add(l * 16 + 8));
        for (i, row) in c.iter_mut().enumerate() {
            let a = _mm512_set1_pd(*ap.add(l * 8 + i));
            row[0] = _mm512_fmadd_pd(a, b0, row[0]);
            row[1] = _mm512_fmadd_pd(a, b1, row[1]);
        }
    }
    for (i, row) in c.iter().enumerate() {
        for (j, r) in row.iter().enumerate() {
            _mm512_storeu_pd(acc.add(i * 16 + j * 8), *r);
        }
    }
}

/// AVX-512F f32 kernel, 12×32 tile — the wider-MR f32 path: a 12×2 grid of
/// `zmm` accumulators (24 of 32) plus two B loads and one A broadcast.
/// 16-lane vectors make NR cheap and A reuse the scarce resource, so MR
/// grows instead.
///
/// # Safety
/// AVX-512F must be available; `kk·12` / `kk·32` panels, 12×32 tile.
#[cfg(all(target_arch = "x86_64", dense_avx512))]
#[target_feature(enable = "avx512f")]
// Same MSRV story as mk_avx512_f64: gated on rustc >= 1.89 by build.rs.
#[allow(clippy::incompatible_msrv)]
unsafe fn mk_avx512_f32(ap: *const f32, bp: *const f32, kk: usize, acc: *mut f32) {
    use core::arch::x86_64::*;
    let mut c = [[_mm512_setzero_ps(); 2]; 12];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, r) in row.iter_mut().enumerate() {
            *r = _mm512_loadu_ps(acc.add(i * 32 + j * 16));
        }
    }
    for l in 0..kk {
        let b0 = _mm512_loadu_ps(bp.add(l * 32));
        let b1 = _mm512_loadu_ps(bp.add(l * 32 + 16));
        for (i, row) in c.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*ap.add(l * 12 + i));
            row[0] = _mm512_fmadd_ps(a, b0, row[0]);
            row[1] = _mm512_fmadd_ps(a, b1, row[1]);
        }
    }
    for (i, row) in c.iter().enumerate() {
        for (j, r) in row.iter().enumerate() {
            _mm512_storeu_ps(acc.add(i * 32 + j * 16), *r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_round_trip() {
        for k in KernelKind::ALL {
            assert_eq!(KernelKind::parse(k.name()), Some(k));
        }
        assert_eq!(KernelKind::parse("zonk"), None);
        assert_eq!(KernelKind::parse(" avx2 "), Some(KernelKind::Avx2));
    }

    #[test]
    fn geometries_fit_the_declared_bounds() {
        for k in KernelKind::ALL {
            for elem in [4usize, 8] {
                let (mr, nr) = k.geom(elem);
                assert!((1..=MAX_MR).contains(&mr), "{k:?}/{elem}: mr {mr}");
                assert!((1..=MAX_NR).contains(&nr), "{k:?}/{elem}: nr {nr}");
                assert!(mr * nr <= MAX_ACC, "{k:?}/{elem}: tile {}", mr * nr);
            }
        }
        // The fallback geometry is the pack-module constant pair.
        assert_eq!(
            KernelKind::Portable.geom(8),
            (crate::pack::MR, crate::pack::NR)
        );
    }

    #[test]
    fn selection_yields_an_available_kernel() {
        let k = gemm_kernel();
        assert!(k.available(), "selected {k:?} must be runnable");
        assert!(KernelKind::Portable.available());
    }

    #[test]
    fn thread_pin_overrides_and_clears() {
        set_gemm_kernel(Some(KernelKind::Portable));
        assert_eq!(gemm_kernel(), KernelKind::Portable);
        set_gemm_kernel(None);
        assert!(gemm_kernel().available());
    }

    /// Every available kernel must compute the same tile as a scalar
    /// reference, up to an FMA-rounding ulp bound (exact for `portable`).
    #[test]
    fn microkernels_match_scalar_reference() {
        fn check<T: Scalar>(kind: KernelKind, tol: f64) {
            let elem = std::mem::size_of::<T>();
            let (mr, nr) = kind.geom(elem);
            let kk = 17;
            let apanel: Vec<T> = (0..kk * mr)
                .map(|v| T::from_f64(((v * 37 + 11) % 23) as f64 / 23.0 - 0.5))
                .collect();
            let bpanel: Vec<T> = (0..kk * nr)
                .map(|v| T::from_f64(((v * 29 + 5) % 19) as f64 / 19.0 - 0.5))
                .collect();
            // A non-zero starting tile so the accumulate-in-place load path
            // is exercised too.
            let mut acc: Vec<T> = (0..mr * nr)
                .map(|v| T::from_f64((v % 7) as f64 * 0.125))
                .collect();
            let start = acc.clone();
            microkernel(kind, &apanel, &bpanel, kk, &mut acc);
            for i in 0..mr {
                for j in 0..nr {
                    let mut want = start[i * nr + j].to_f64();
                    for l in 0..kk {
                        want += apanel[l * mr + i].to_f64() * bpanel[l * nr + j].to_f64();
                    }
                    let got = acc[i * nr + j].to_f64();
                    assert!(
                        (got - want).abs() <= tol,
                        "{kind:?} ({mr}x{nr}) at ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
        for kind in KernelKind::ALL {
            if !kind.available() {
                continue;
            }
            // f64 reference is computed in f64: FMA-vs-separate rounding
            // differs by ≤ kk ulps of the running sum (|sum| < ~5 here).
            check::<f64>(kind, 1e-13);
            check::<f32>(kind, 1e-4);
        }
    }
}
