//! Runtime autotuner for the blocked GEMM's cache-blocking parameters.
//!
//! The five-loop kernel in [`gemm`](crate::gemm) needs three blocking sizes
//! (the BLIS names): `KC` (depth of one packed slab), `MC` (rows of one
//! packed A block) and `NC` (columns of one packed B slab). Good values are
//! a function of the cache hierarchy, so instead of hard-coding one
//! machine's numbers this module probes the caches once at first use and
//! derives the blocking analytically, per element size:
//!
//! * **KC** — one `KC×NR` strip of packed B is streamed through the
//!   microkernel for every `MR`-row strip of the A block, so it should stay
//!   L1-resident: `KC = L1d / 2 / (NR · elem)`, leaving the other half of
//!   L1 for the A panel stream and C tile.
//! * **MC** — the packed `MC×KC` A block is reused across every `NR`-column
//!   strip of the B slab, so it should fill about half of L2:
//!   `MC = L2 / 2 / (KC · elem)`.
//! * **NC** — the packed `KC×NC` B slab is reused across every `MC`-row
//!   block of A, so it should fit in this core's share of L3:
//!   `NC = L3_share / 2 / (KC · elem)`.
//!
//! Cache sizes come from sysfs (`/sys/devices/system/cpu/cpu0/cache`,
//! Linux) with compiled-in fallbacks (32 KiB / 512 KiB / 8 MiB) elsewhere;
//! the L3 share divides the package L3 by the number of CPUs listed in its
//! `shared_cpu_list`. The SIMD register width is probed too
//! (AVX-512 / AVX2 / SSE2 on x86-64) — it is recorded in [`CacheInfo`] for
//! reports and sanity checks; the `MR×NR` register block itself is a
//! compile-time constant chosen to stay enregistered at any of those widths
//! (see [`pack`](crate::pack)).
//!
//! Overrides, in precedence order:
//!
//! 1. [`set_gemm_blocking`] — a *per-thread* pin (benches and tests use it
//!    to force boundary configurations without racing other threads);
//! 2. `DENSE_GEMM_TUNE=mc:kc:nc` — process-wide env override, read once;
//! 3. the derived values, computed once per element size and cached in a
//!    `OnceLock`.
//!
//! Every source is normalized: `MC` is rounded to a multiple of `MR`, `NC`
//! to a multiple of `NR`, and all three are clamped to sane ranges, so the
//! kernel never sees a degenerate blocking.

use crate::pack::{MR, NR};
use crate::scalar::Scalar;
use std::sync::OnceLock;

/// Cache-blocking parameters for the five-loop GEMM (BLIS naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Rows per packed A block (loop 3 step); multiple of `MR`.
    pub mc: usize,
    /// Depth per packed slab (loop 4 step).
    pub kc: usize,
    /// Columns per packed B slab (loop 5 step); multiple of `NR`.
    pub nc: usize,
}

/// What the one-shot probe discovered about this machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheInfo {
    /// L1 data cache size in bytes (per core).
    pub l1d: usize,
    /// L2 cache size in bytes (per core).
    pub l2: usize,
    /// This core's *share* of the last-level cache in bytes (package size
    /// divided by the number of CPUs sharing it).
    pub l3_share: usize,
    /// Widest SIMD register in bits (512 / 256 / 128), informational.
    pub simd_bits: usize,
}

/// Fallbacks when sysfs is unavailable (non-Linux, sandboxes): a
/// conservative x86-64 baseline.
const FALLBACK: CacheInfo = CacheInfo {
    l1d: 32 * 1024,
    l2: 512 * 1024,
    l3_share: 8 * 1024 * 1024,
    simd_bits: 128,
};

/// The probed cache hierarchy, computed once per process.
pub fn cache_info() -> CacheInfo {
    static INFO: OnceLock<CacheInfo> = OnceLock::new();
    *INFO.get_or_init(|| {
        let (l1d, l2, l3_share) =
            probe_sysfs().unwrap_or((FALLBACK.l1d, FALLBACK.l2, { FALLBACK.l3_share }));
        CacheInfo {
            l1d,
            l2,
            l3_share,
            simd_bits: simd_bits(),
        }
    })
}

/// Widest SIMD register width in bits on this host.
fn simd_bits() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return 512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return 256;
        }
        128 // SSE2 is baseline on x86-64
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        128
    }
}

/// Parses a sysfs cache `size` string: `"48K"`, `"2048K"`, `"1M"`, plain
/// bytes. Returns `None` on anything unrecognized.
fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

/// Counts the CPUs in a sysfs `shared_cpu_list` string (`"0-3,8,10-11"`).
fn count_cpu_list(s: &str) -> Option<usize> {
    let mut count = 0usize;
    for part in s.trim().split(',') {
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi) = (
                    lo.trim().parse::<usize>().ok()?,
                    hi.trim().parse::<usize>().ok()?,
                );
                count += hi.checked_sub(lo)? + 1;
            }
            None => {
                part.trim().parse::<usize>().ok()?;
                count += 1;
            }
        }
    }
    (count > 0).then_some(count)
}

/// Best-effort Linux sysfs probe of (L1d, L2, L3 share) for cpu0. Any
/// missing level falls back individually; `None` only when *nothing* was
/// readable.
fn probe_sysfs() -> Option<(usize, usize, usize)> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let read = |idx: usize, file: &str| -> Option<String> {
        std::fs::read_to_string(base.join(format!("index{idx}")).join(file)).ok()
    };
    let mut l1d = None;
    let mut l2 = None;
    let mut l3_share = None;
    for idx in 0..8 {
        let Some(level) = read(idx, "level").and_then(|s| s.trim().parse::<u32>().ok()) else {
            break;
        };
        let ty = read(idx, "type").unwrap_or_default();
        let ty = ty.trim();
        let Some(size) = read(idx, "size").and_then(|s| parse_size(&s)) else {
            continue;
        };
        match (level, ty) {
            (1, "Data") | (1, "Unified") => l1d = Some(size),
            (2, _) if ty != "Instruction" => l2 = Some(size),
            (3, _) if ty != "Instruction" => {
                let sharers = read(idx, "shared_cpu_list")
                    .and_then(|s| count_cpu_list(&s))
                    .unwrap_or(1);
                l3_share = Some((size / sharers).max(1));
            }
            _ => {}
        }
    }
    if l1d.is_none() && l2.is_none() && l3_share.is_none() {
        return None;
    }
    Some((
        l1d.unwrap_or(FALLBACK.l1d),
        l2.unwrap_or(FALLBACK.l2),
        // No (or no readable) L3: treat L2 as the last level so NC still
        // bounds the B slab by something real.
        l3_share.unwrap_or_else(|| l2.map_or(FALLBACK.l3_share, |l2| l2 * 8)),
    ))
}

fn round_down_to(multiple: usize, v: usize) -> usize {
    (v / multiple).max(1) * multiple
}

/// The analytic BLIS-style derivation (see the module docs) for elements of
/// `elem` bytes.
pub fn derive(ci: CacheInfo, elem: usize) -> Blocking {
    // KC: the KC×NR packed-B micro-panel should own about 2/3 of L1d,
    // leaving the rest for the streaming MR×KC A panel and the C tile.
    // (Half-of-L1 is the textbook figure; measured on AVX-512 hosts the
    // larger panel wins a few percent by amortizing loop overhead — 48K L1
    // lands on the classic KC = 256 for f64.)
    let kc = (ci.l1d * 2 / 3 / (NR * elem)).clamp(64, 1024);
    let mc = ci.l2 / 2 / (kc * elem);
    let nc = ci.l3_share / 2 / (kc * elem);
    normalize(Blocking { mc, kc, nc })
}

/// Rounds `mc`/`nc` to `MR`/`NR` multiples and clamps everything to sane
/// ranges. Applied to every source (derived, env, and explicit pins), so
/// the kernel never sees a zero or pathological blocking.
pub fn normalize(b: Blocking) -> Blocking {
    Blocking {
        mc: round_down_to(MR, b.mc.clamp(MR, 1024)),
        kc: b.kc.clamp(8, 1024),
        nc: round_down_to(NR, b.nc.clamp(NR, 8192)),
    }
}

/// Parses the `DENSE_GEMM_TUNE` value: `"mc:kc:nc"` (decimal). `None` on
/// malformed input.
fn parse_tune(s: &str) -> Option<Blocking> {
    let mut it = s.trim().split(':');
    let mc = it.next()?.trim().parse().ok()?;
    let kc = it.next()?.trim().parse().ok()?;
    let nc = it.next()?.trim().parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(normalize(Blocking { mc, kc, nc }))
}

/// The `DENSE_GEMM_TUNE` override, read and parsed once. A malformed value
/// is reported to stderr once and ignored (derived values apply).
fn env_override() -> Option<Blocking> {
    static ENV: OnceLock<Option<Blocking>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("DENSE_GEMM_TUNE").ok()?;
        let parsed = parse_tune(&raw);
        if parsed.is_none() {
            eprintln!("dense: ignoring malformed DENSE_GEMM_TUNE={raw:?} (expected \"mc:kc:nc\")");
        }
        parsed
    })
}

std::thread_local! {
    /// Per-thread pin from [`set_gemm_blocking`]; `None` = unset.
    static THREAD_BLOCKING: std::cell::Cell<Option<Blocking>> =
        const { std::cell::Cell::new(None) };
}

/// Pins (or with `None` clears) the blocking used by GEMM calls made *from
/// the current thread*. Takes precedence over `DENSE_GEMM_TUNE` and the
/// derived values. Thread-local on purpose: concurrently running tests and
/// rank threads can pin different configurations without racing; pin it on
/// the thread that *calls* [`gemm`](crate::gemm::gemm) (the blocking is
/// resolved at the call site, before work fans out to the pool).
pub fn set_gemm_blocking(b: Option<Blocking>) {
    THREAD_BLOCKING.with(|c| c.set(b.map(normalize)));
}

/// Derived blocking for `elem`-byte elements, computed once per size.
fn derived(elem: usize) -> Blocking {
    static DERIVED_4: OnceLock<Blocking> = OnceLock::new();
    static DERIVED_8: OnceLock<Blocking> = OnceLock::new();
    let cell = if elem == 4 { &DERIVED_4 } else { &DERIVED_8 };
    *cell.get_or_init(|| derive(cache_info(), elem))
}

/// The blocking the next GEMM call from this thread will use:
/// [`set_gemm_blocking`] pin > `DENSE_GEMM_TUNE` > derived-and-cached.
pub fn blocking<T: Scalar>() -> Blocking {
    if let Some(b) = THREAD_BLOCKING.with(|c| c.get()) {
        return b;
    }
    if let Some(b) = env_override() {
        return b;
    }
    derived(std::mem::size_of::<T>())
}

/// Measures this core's peak arithmetic rate in Gflop/s by timing the
/// *actual* `MR×NR` register microkernel ([`gemm`](crate::gemm)'s inner
/// loop) on L1-resident packed panels — the roofline ceiling
/// [`prof`](crate::prof) reports achieved GEMM throughput against. This is
/// deliberately a single-core figure: the profile's achieved rate is
/// per-busy-core too, so the two are directly comparable.
///
/// Probed once per element size (a few milliseconds) and cached.
pub fn probed_peak_gflops<T: Scalar>() -> f64 {
    static PEAK_4: OnceLock<f64> = OnceLock::new();
    static PEAK_8: OnceLock<f64> = OnceLock::new();
    match std::mem::size_of::<T>() {
        4 => *PEAK_4.get_or_init(probe_peak::<T>),
        8 => *PEAK_8.get_or_init(probe_peak::<T>),
        _ => probe_peak::<T>(),
    }
}

/// By-size dispatch for callers that erased the scalar type (the profiler
/// stores only the element width); 0.0 for widths no kernel uses.
pub(crate) fn probed_peak_gflops_for_elem(elem: usize) -> f64 {
    match elem {
        4 => probed_peak_gflops::<f32>(),
        8 => probed_peak_gflops::<f64>(),
        _ => 0.0,
    }
}

fn probe_peak<T: Scalar>() -> f64 {
    const KK: usize = 128; // panel depth: KC-like, comfortably L1-resident
    let mut x = T::ONE;
    let apanel: Vec<T> = (0..KK * MR)
        .map(|_| {
            // Mildly varied values so no multiply folds to a constant.
            x += T::ONE;
            x
        })
        .collect();
    let bpanel: Vec<T> = apanel.iter().rev().copied().collect();
    let mut acc = [[T::ZERO; NR]; MR];
    let flops_per_pass = (2 * MR * NR * KK) as f64;
    // Calibrate the rep count until one timed pass lasts ≥ 1 ms, then keep
    // the best (least-interrupted) of three measured passes.
    let mut reps = 64usize;
    loop {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            crate::gemm::microkernel(&apanel, &bpanel, &mut acc);
            std::hint::black_box(&mut acc);
        }
        if t0.elapsed().as_secs_f64() >= 1e-3 || reps >= (1 << 22) {
            break;
        }
        reps *= 2;
    }
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            crate::gemm::microkernel(&apanel, &bpanel, &mut acc);
            std::hint::black_box(&mut acc);
        }
        best = best.max(flops_per_pass * reps as f64 / t0.elapsed().as_secs_f64() / 1e9);
    }
    best.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2048K\n"), Some(2048 * 1024));
        assert_eq!(parse_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("zonk"), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn cpu_list_counting() {
        assert_eq!(count_cpu_list("0"), Some(1));
        assert_eq!(count_cpu_list("0-3"), Some(4));
        assert_eq!(count_cpu_list("0-3,8,10-11"), Some(7));
        assert_eq!(count_cpu_list(""), None);
        assert_eq!(count_cpu_list("3-1"), None); // inverted range
        assert_eq!(count_cpu_list("a-b"), None);
    }

    #[test]
    fn derive_is_cache_monotone_and_normalized() {
        let small = CacheInfo {
            l1d: 16 * 1024,
            l2: 256 * 1024,
            l3_share: 2 * 1024 * 1024,
            simd_bits: 128,
        };
        let big = CacheInfo {
            l1d: 64 * 1024,
            l2: 2 * 1024 * 1024,
            l3_share: 32 * 1024 * 1024,
            simd_bits: 512,
        };
        for elem in [4usize, 8] {
            let bs = derive(small, elem);
            let bb = derive(big, elem);
            assert!(bb.kc >= bs.kc, "{elem}: kc not monotone");
            assert!(bb.mc >= bs.mc, "{elem}: mc not monotone");
            assert!(bb.nc >= bs.nc, "{elem}: nc not monotone");
            for b in [bs, bb] {
                assert_eq!(b.mc % MR, 0);
                assert_eq!(b.nc % NR, 0);
                assert!(b.kc >= 8 && b.kc <= 1024);
                // The KC bound is what keeps packed slabs strictly smaller
                // than a full-matrix pack for k > 1024 (2048^3 case).
                assert!(b.mc <= 1024 && b.nc <= 8192);
            }
        }
        // Smaller elements fit more per line: f32 blocking >= f64 blocking.
        assert!(derive(big, 4).kc >= derive(big, 8).kc);
    }

    #[test]
    fn tune_env_parsing() {
        assert_eq!(
            parse_tune("256:192:4096"),
            Some(Blocking {
                mc: 256,
                kc: 192,
                nc: 4096
            })
        );
        // Normalization rounds and clamps.
        let b = parse_tune("7:3:17").unwrap();
        assert_eq!(b.mc, MR);
        assert_eq!(b.kc, 8);
        assert_eq!(b.nc, NR);
        assert_eq!(parse_tune("1:2"), None);
        assert_eq!(parse_tune("1:2:3:4"), None);
        assert_eq!(parse_tune("a:b:c"), None);
    }

    #[test]
    fn thread_pin_overrides_and_clears() {
        let pin = Blocking {
            mc: 8,
            kc: 8,
            nc: 32,
        };
        set_gemm_blocking(Some(pin));
        assert_eq!(blocking::<f64>(), pin);
        assert_eq!(blocking::<f32>(), pin);
        set_gemm_blocking(None);
        let b = blocking::<f64>();
        assert!(b.kc >= 8, "cleared pin must fall back to derived/env");
    }

    #[test]
    fn probe_runs_without_panicking() {
        // Whatever the host, the probe must produce a usable hierarchy.
        let ci = cache_info();
        assert!(ci.l1d >= 4 * 1024);
        assert!(ci.l2 >= ci.l1d);
        assert!(matches!(ci.simd_bits, 128 | 256 | 512));
    }
}
