//! Runtime autotuner for the blocked GEMM's cache-blocking parameters.
//!
//! The five-loop kernel in [`gemm`](crate::gemm) needs three blocking sizes
//! (the BLIS names): `KC` (depth of one packed slab), `MC` (rows of one
//! packed A block) and `NC` (columns of one packed B slab). Good values are
//! a function of the cache hierarchy, so instead of hard-coding one
//! machine's numbers this module probes the caches once at first use and
//! derives the blocking analytically, per element size:
//!
//! * **KC** — one `KC×NR` strip of packed B is streamed through the
//!   microkernel for every `MR`-row strip of the A block, so it should stay
//!   L1-resident: `KC = L1d / 2 / (NR · elem)`, leaving the other half of
//!   L1 for the A panel stream and C tile.
//! * **MC** — the packed `MC×KC` A block is reused across every `NR`-column
//!   strip of the B slab, so it should fill about half of L2:
//!   `MC = L2 / 2 / (KC · elem)`.
//! * **NC** — the packed `KC×NC` B slab is reused across every `MC`-row
//!   block of A, so it should fit in this core's share of L3:
//!   `NC = L3_share / 2 / (KC · elem)`.
//!
//! Cache sizes come from sysfs (`/sys/devices/system/cpu/cpu0/cache`,
//! Linux) with compiled-in fallbacks (32 KiB / 512 KiB / 8 MiB) elsewhere;
//! the L3 share divides the package L3 by the number of CPUs listed in its
//! `shared_cpu_list`. The SIMD register width is probed too
//! (AVX-512 / AVX2 / SSE2 on x86-64) — it drives the microkernel
//! dispatcher ([`kernel`](crate::kernel)), whose selected `MR×NR` geometry
//! in turn parameterizes the derivation here: the blocking and the
//! [`probed_peak_gflops`] roofline ceiling are both computed *for the
//! dispatched kernel*, cached per `(element size, kernel)`.
//!
//! Overrides, in precedence order:
//!
//! 1. [`set_gemm_blocking`] — a *per-thread* pin (benches and tests use it
//!    to force boundary configurations without racing other threads);
//! 2. `DENSE_GEMM_TUNE=mc:kc:nc` — process-wide env override, read once;
//! 3. the derived values, computed once per `(element size, kernel)` and
//!    cached in a `OnceLock`.
//!
//! Every source is normalized: `MC` is rounded to a multiple of `MR`, `NC`
//! to a multiple of `NR` (the *selected kernel's* values for derived
//! blockings, the portable constants for human-specified overrides — a
//! non-multiple override still runs correctly, the packers absorb ragged
//! tails), and all three are clamped to sane ranges, so the kernel never
//! sees a degenerate blocking.

use crate::kernel::{self, KernelKind};
use crate::pack::{MR, NR};
use crate::scalar::Scalar;
use std::sync::OnceLock;

/// Cache-blocking parameters for the five-loop GEMM (BLIS naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Rows per packed A block (loop 3 step); multiple of `MR`.
    pub mc: usize,
    /// Depth per packed slab (loop 4 step).
    pub kc: usize,
    /// Columns per packed B slab (loop 5 step); multiple of `NR`.
    pub nc: usize,
}

/// What the one-shot probe discovered about this machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheInfo {
    /// L1 data cache size in bytes (per core).
    pub l1d: usize,
    /// L2 cache size in bytes (per core).
    pub l2: usize,
    /// This core's *share* of the last-level cache in bytes (package size
    /// divided by the number of CPUs sharing it).
    pub l3_share: usize,
    /// Widest SIMD register in bits (512 / 256 / 128) — the basis of the
    /// microkernel dispatch in [`kernel`](crate::kernel).
    pub simd_bits: usize,
}

/// Fallbacks when sysfs is unavailable (non-Linux, sandboxes): a
/// conservative x86-64 baseline.
const FALLBACK: CacheInfo = CacheInfo {
    l1d: 32 * 1024,
    l2: 512 * 1024,
    l3_share: 8 * 1024 * 1024,
    simd_bits: 128,
};

/// The probed cache hierarchy, computed once per process.
pub fn cache_info() -> CacheInfo {
    static INFO: OnceLock<CacheInfo> = OnceLock::new();
    *INFO.get_or_init(|| {
        let (l1d, l2, l3_share) =
            probe_sysfs().unwrap_or((FALLBACK.l1d, FALLBACK.l2, { FALLBACK.l3_share }));
        CacheInfo {
            l1d,
            l2,
            l3_share,
            simd_bits: simd_bits(),
        }
    })
}

/// Widest SIMD register width in bits on this host.
fn simd_bits() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return 512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return 256;
        }
        128 // SSE2 is baseline on x86-64
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        128
    }
}

/// Parses a sysfs cache `size` string: `"48K"`, `"2048K"`, `"1M"`, plain
/// bytes. Returns `None` on anything unrecognized.
fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

/// Counts the CPUs in a sysfs `shared_cpu_list` string (`"0-3,8,10-11"`).
fn count_cpu_list(s: &str) -> Option<usize> {
    let mut count = 0usize;
    for part in s.trim().split(',') {
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi) = (
                    lo.trim().parse::<usize>().ok()?,
                    hi.trim().parse::<usize>().ok()?,
                );
                count += hi.checked_sub(lo)? + 1;
            }
            None => {
                part.trim().parse::<usize>().ok()?;
                count += 1;
            }
        }
    }
    (count > 0).then_some(count)
}

/// Best-effort Linux sysfs probe of (L1d, L2, L3 share) for cpu0. Any
/// missing level falls back individually; `None` only when *nothing* was
/// readable.
fn probe_sysfs() -> Option<(usize, usize, usize)> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let read = |idx: usize, file: &str| -> Option<String> {
        std::fs::read_to_string(base.join(format!("index{idx}")).join(file)).ok()
    };
    let mut l1d = None;
    let mut l2 = None;
    let mut l3_share = None;
    for idx in 0..8 {
        let Some(level) = read(idx, "level").and_then(|s| s.trim().parse::<u32>().ok()) else {
            break;
        };
        let ty = read(idx, "type").unwrap_or_default();
        let ty = ty.trim();
        let Some(size) = read(idx, "size").and_then(|s| parse_size(&s)) else {
            continue;
        };
        match (level, ty) {
            (1, "Data") | (1, "Unified") => l1d = Some(size),
            (2, _) if ty != "Instruction" => l2 = Some(size),
            (3, _) if ty != "Instruction" => {
                let sharers = read(idx, "shared_cpu_list")
                    .and_then(|s| count_cpu_list(&s))
                    .unwrap_or(1);
                l3_share = Some((size / sharers).max(1));
            }
            _ => {}
        }
    }
    if l1d.is_none() && l2.is_none() && l3_share.is_none() {
        return None;
    }
    Some((
        l1d.unwrap_or(FALLBACK.l1d),
        l2.unwrap_or(FALLBACK.l2),
        // No (or no readable) L3: treat L2 as the last level so NC still
        // bounds the B slab by something real.
        l3_share.unwrap_or_else(|| l2.map_or(FALLBACK.l3_share, |l2| l2 * 8)),
    ))
}

fn round_down_to(multiple: usize, v: usize) -> usize {
    (v / multiple).max(1) * multiple
}

/// The analytic BLIS-style derivation (see the module docs) for elements of
/// `elem` bytes and a kernel with register-block geometry `mr × nr`.
pub fn derive(ci: CacheInfo, elem: usize, mr: usize, nr: usize) -> Blocking {
    // KC: the KC×nr packed-B micro-panel should own about 2/3 of L1d,
    // leaving the rest for the streaming mr×KC A panel and the C tile.
    // (Half-of-L1 is the textbook figure; measured on AVX-512 hosts the
    // larger panel wins a few percent by amortizing loop overhead — 48K L1
    // lands on the classic KC = 256 for the portable f64 geometry.)
    let kc = (ci.l1d * 2 / 3 / (nr * elem)).clamp(64, 1024);
    let mc = ci.l2 / 2 / (kc * elem);
    let nc = ci.l3_share / 2 / (kc * elem);
    normalize_for(Blocking { mc, kc, nc }, mr, nr)
}

/// Rounds `mc`/`nc` to multiples of the given register-block geometry and
/// clamps everything to sane ranges, so the kernel never sees a zero or
/// pathological blocking.
pub fn normalize_for(b: Blocking, mr: usize, nr: usize) -> Blocking {
    Blocking {
        mc: round_down_to(mr, b.mc.clamp(mr, 1024)),
        kc: b.kc.clamp(8, 1024),
        nc: round_down_to(nr, b.nc.clamp(nr, 8192)),
    }
}

/// [`normalize_for`] with the portable geometry — applied to
/// human-specified overrides (env and pins), which are kernel-agnostic.
/// A blocking that is not a multiple of the *selected* kernel's `mr`/`nr`
/// still runs correctly: the packers zero-pad ragged tails.
pub fn normalize(b: Blocking) -> Blocking {
    normalize_for(b, MR, NR)
}

/// Parses the `DENSE_GEMM_TUNE` value: `"mc:kc:nc"` (decimal). `None` on
/// malformed input.
fn parse_tune(s: &str) -> Option<Blocking> {
    let mut it = s.trim().split(':');
    let mc = it.next()?.trim().parse().ok()?;
    let kc = it.next()?.trim().parse().ok()?;
    let nc = it.next()?.trim().parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(normalize(Blocking { mc, kc, nc }))
}

/// The `DENSE_GEMM_TUNE` override, read and parsed once. A malformed value
/// is reported to stderr once and ignored (derived values apply).
fn env_override() -> Option<Blocking> {
    static ENV: OnceLock<Option<Blocking>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("DENSE_GEMM_TUNE").ok()?;
        let parsed = parse_tune(&raw);
        if parsed.is_none() {
            eprintln!("dense: ignoring malformed DENSE_GEMM_TUNE={raw:?} (expected \"mc:kc:nc\")");
        }
        parsed
    })
}

std::thread_local! {
    /// Per-thread pin from [`set_gemm_blocking`]; `None` = unset.
    static THREAD_BLOCKING: std::cell::Cell<Option<Blocking>> =
        const { std::cell::Cell::new(None) };
}

/// Pins (or with `None` clears) the blocking used by GEMM calls made *from
/// the current thread*. Takes precedence over `DENSE_GEMM_TUNE` and the
/// derived values. Thread-local on purpose: concurrently running tests and
/// rank threads can pin different configurations without racing; pin it on
/// the thread that *calls* [`gemm`](crate::gemm::gemm) (the blocking is
/// resolved at the call site, before work fans out to the pool).
pub fn set_gemm_blocking(b: Option<Blocking>) {
    THREAD_BLOCKING.with(|c| c.set(b.map(normalize)));
}

/// Derived blocking for `elem`-byte elements under kernel `kind`, computed
/// once per `(size, kernel)` pair.
fn derived(elem: usize, kind: KernelKind) -> Blocking {
    static CELLS: [[OnceLock<Blocking>; 3]; 2] = [
        [const { OnceLock::new() }; 3],
        [const { OnceLock::new() }; 3],
    ];
    let ei = usize::from(elem != 4);
    *CELLS[ei][kind.index()].get_or_init(|| {
        let (mr, nr) = kind.geom(elem);
        derive(cache_info(), elem, mr, nr)
    })
}

/// The blocking a GEMM call dispatching to `kind` will use:
/// [`set_gemm_blocking`] pin > `DENSE_GEMM_TUNE` > derived-and-cached for
/// `(element size, kind)`.
pub fn blocking_for<T: Scalar>(kind: KernelKind) -> Blocking {
    if let Some(b) = THREAD_BLOCKING.with(|c| c.get()) {
        return b;
    }
    if let Some(b) = env_override() {
        return b;
    }
    derived(std::mem::size_of::<T>(), kind)
}

/// [`blocking_for`] resolved against the currently selected kernel — what
/// the next GEMM call from this thread will use.
pub fn blocking<T: Scalar>() -> Blocking {
    blocking_for::<T>(kernel::gemm_kernel_for::<T>())
}

/// Measures this core's peak arithmetic rate in Gflop/s by timing the
/// *actual* register microkernel the dispatcher selected — at the selected
/// kernel's own `MR×NR` geometry, on L1-resident packed panels — the
/// roofline ceiling [`prof`](crate::prof) reports achieved GEMM throughput
/// against. Probing the dispatched kernel (not the portable fallback)
/// keeps the dashboard's `peak%` honest: a SIMD kernel measured against a
/// portable ceiling would read far above 100%. This is deliberately a
/// single-core figure: the profile's achieved rate is per-busy-core too,
/// so the two are directly comparable.
///
/// Probed once per `(element size, kernel)` — the kernel is part of the
/// cache key — and cached.
pub fn probed_peak_gflops<T: Scalar>() -> f64 {
    probed_peak_gflops_for::<T>(kernel::gemm_kernel_for::<T>())
}

/// [`probed_peak_gflops`] for an explicit kernel (must be
/// [`available`](KernelKind::available)).
pub fn probed_peak_gflops_for<T: Scalar>(kind: KernelKind) -> f64 {
    static CELLS: [[OnceLock<f64>; 3]; 2] = [
        [const { OnceLock::new() }; 3],
        [const { OnceLock::new() }; 3],
    ];
    let elem = std::mem::size_of::<T>();
    if elem != 4 && elem != 8 {
        return probe_peak::<T>(KernelKind::Portable);
    }
    let ei = usize::from(elem != 4);
    *CELLS[ei][kind.index()].get_or_init(|| probe_peak::<T>(kind))
}

/// By-size dispatch for callers that erased the scalar type (the profiler
/// stores only the element width); 0.0 for widths no kernel uses.
pub(crate) fn probed_peak_gflops_for_elem_kind(elem: usize, kind: KernelKind) -> f64 {
    match elem {
        4 => probed_peak_gflops_for::<f32>(kind),
        8 => probed_peak_gflops_for::<f64>(kind),
        _ => 0.0,
    }
}

fn probe_peak<T: Scalar>(kind: KernelKind) -> f64 {
    assert!(kind.available(), "cannot probe unavailable kernel {kind:?}");
    const KK: usize = 128; // panel depth: KC-like, comfortably L1-resident
    let (mr, nr) = kind.geom(std::mem::size_of::<T>());
    let mut x = T::ONE;
    let apanel: Vec<T> = (0..KK * mr)
        .map(|_| {
            // Mildly varied values so no multiply folds to a constant.
            x += T::ONE;
            x
        })
        .collect();
    let bpanel: Vec<T> = (0..KK * nr).rev().map(|v| T::from_f64(v as f64)).collect();
    let mut acc = vec![T::ZERO; mr * nr];
    let flops_per_pass = (2 * mr * nr * KK) as f64;
    // Calibrate the rep count until one timed pass lasts ≥ 1 ms, then keep
    // the best (least-interrupted) of three measured passes.
    let mut reps = 64usize;
    loop {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            kernel::microkernel(kind, &apanel, &bpanel, KK, &mut acc);
            std::hint::black_box(&mut acc);
        }
        if t0.elapsed().as_secs_f64() >= 1e-3 || reps >= (1 << 22) {
            break;
        }
        reps *= 2;
    }
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            kernel::microkernel(kind, &apanel, &bpanel, KK, &mut acc);
            std::hint::black_box(&mut acc);
        }
        best = best.max(flops_per_pass * reps as f64 / t0.elapsed().as_secs_f64() / 1e9);
    }
    best.max(f64::MIN_POSITIVE)
}

/// Number of NUMA nodes on this host (sysfs; 1 when undetectable), probed
/// once. Drives the default for NUMA-aware packing.
pub fn numa_nodes() -> usize {
    static NODES: OnceLock<usize> = OnceLock::new();
    *NODES.get_or_init(|| {
        let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else {
            return 1;
        };
        let n = entries
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.strip_prefix("node")
                    .is_some_and(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
            })
            .count();
        n.max(1)
    })
}

/// Whether the packing path should place packed-B pages by *first touch on
/// the packing worker* (NUMA-aware) instead of pre-faulting the slab on
/// the submitting thread. `DENSE_GEMM_NUMA=1`/`0` forces it either way;
/// unset, it defaults to on exactly when the host has more than one NUMA
/// node (a strict no-op on single-node hosts — only page placement
/// changes, never values). Read once.
pub fn numa_packing() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("DENSE_GEMM_NUMA") {
        Ok(v) if v == "0" => false,
        Ok(v) if !v.is_empty() => true,
        _ => numa_nodes() > 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2048K\n"), Some(2048 * 1024));
        assert_eq!(parse_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("zonk"), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn cpu_list_counting() {
        assert_eq!(count_cpu_list("0"), Some(1));
        assert_eq!(count_cpu_list("0-3"), Some(4));
        assert_eq!(count_cpu_list("0-3,8,10-11"), Some(7));
        assert_eq!(count_cpu_list(""), None);
        assert_eq!(count_cpu_list("3-1"), None); // inverted range
        assert_eq!(count_cpu_list("a-b"), None);
    }

    #[test]
    fn derive_is_cache_monotone_and_normalized() {
        let small = CacheInfo {
            l1d: 16 * 1024,
            l2: 256 * 1024,
            l3_share: 2 * 1024 * 1024,
            simd_bits: 128,
        };
        let big = CacheInfo {
            l1d: 64 * 1024,
            l2: 2 * 1024 * 1024,
            l3_share: 32 * 1024 * 1024,
            simd_bits: 512,
        };
        for elem in [4usize, 8] {
            let bs = derive(small, elem, MR, NR);
            let bb = derive(big, elem, MR, NR);
            assert!(bb.kc >= bs.kc, "{elem}: kc not monotone");
            assert!(bb.mc >= bs.mc, "{elem}: mc not monotone");
            assert!(bb.nc >= bs.nc, "{elem}: nc not monotone");
            for b in [bs, bb] {
                assert_eq!(b.mc % MR, 0);
                assert_eq!(b.nc % NR, 0);
                assert!(b.kc >= 8 && b.kc <= 1024);
                // The KC bound is what keeps packed slabs strictly smaller
                // than a full-matrix pack for k > 1024 (2048^3 case).
                assert!(b.mc <= 1024 && b.nc <= 8192);
            }
        }
        // Smaller elements fit more per line: f32 blocking >= f64 blocking.
        assert!(derive(big, 4, MR, NR).kc >= derive(big, 8, MR, NR).kc);
    }

    #[test]
    fn tune_env_parsing() {
        assert_eq!(
            parse_tune("256:192:4096"),
            Some(Blocking {
                mc: 256,
                kc: 192,
                nc: 4096
            })
        );
        // Normalization rounds and clamps.
        let b = parse_tune("7:3:17").unwrap();
        assert_eq!(b.mc, MR);
        assert_eq!(b.kc, 8);
        assert_eq!(b.nc, NR);
        assert_eq!(parse_tune("1:2"), None);
        assert_eq!(parse_tune("1:2:3:4"), None);
        assert_eq!(parse_tune("a:b:c"), None);
    }

    #[test]
    fn thread_pin_overrides_and_clears() {
        let pin = Blocking {
            mc: 8,
            kc: 8,
            nc: 32,
        };
        set_gemm_blocking(Some(pin));
        assert_eq!(blocking::<f64>(), pin);
        assert_eq!(blocking::<f32>(), pin);
        set_gemm_blocking(None);
        let b = blocking::<f64>();
        assert!(b.kc >= 8, "cleared pin must fall back to derived/env");
    }

    #[test]
    fn derive_follows_kernel_geometry() {
        let ci = CacheInfo {
            l1d: 48 * 1024,
            l2: 1024 * 1024,
            l3_share: 8 * 1024 * 1024,
            simd_bits: 512,
        };
        for kind in KernelKind::ALL {
            for elem in [4usize, 8] {
                let (mr, nr) = kind.geom(elem);
                let b = derive(ci, elem, mr, nr);
                assert_eq!(b.mc % mr, 0, "{kind:?}/{elem}: mc {} vs mr {mr}", b.mc);
                assert_eq!(b.nc % nr, 0, "{kind:?}/{elem}: nc {} vs nr {nr}", b.nc);
                // A wider NR streams a wider B panel through L1, so KC may
                // only shrink relative to a narrower geometry.
                let portable = derive(ci, elem, MR, NR);
                assert!(b.kc <= portable.kc || nr <= NR, "{kind:?}/{elem}");
            }
        }
    }

    #[test]
    fn peak_probe_is_cached_per_kernel() {
        // The selected kernel's probe: must be positive and stable across
        // calls (cached).
        let p1 = probed_peak_gflops::<f64>();
        let p2 = probed_peak_gflops::<f64>();
        assert!(p1 > 0.0);
        assert_eq!(p1, p2);
        // An explicitly keyed probe for the portable kernel works on any
        // host and is cached under its own key.
        let pp = probed_peak_gflops_for::<f64>(KernelKind::Portable);
        assert!(pp > 0.0);
        assert_eq!(pp, probed_peak_gflops_for::<f64>(KernelKind::Portable));
    }

    #[test]
    fn numa_probes_are_sane() {
        assert!(numa_nodes() >= 1);
        let _ = numa_packing(); // must resolve without panicking
    }

    #[test]
    fn probe_runs_without_panicking() {
        // Whatever the host, the probe must produce a usable hierarchy.
        let ci = cache_info();
        assert!(ci.l1d >= 4 * 1024);
        assert!(ci.l2 >= ci.l1d);
        assert!(matches!(ci.simd_bits, 128 | 256 | 512));
    }
}
