//! Persistent worker pool for the local GEMM kernel.
//!
//! The pre-packed GEMM spawned fresh OS threads with `std::thread::scope`
//! on *every call* and sized itself to `available_parallelism()` — so a
//! 16-rank `msgpass` run oversubscribed the host 16×. This module replaces
//! that with:
//!
//! * a lazy global pool of parked worker threads (`dense-gemm-N`), spawned
//!   once and reused by every GEMM call in the process;
//! * a *thread cap* resolved per calling thread:
//!   `set_gemm_threads()` (process-wide) > `DENSE_GEMM_THREADS` (env) >
//!   `available_parallelism()`, further overridden per rank thread by
//!   [`set_rank_gemm_threads`] — which `msgpass::World::run` sets to
//!   `base / world_size` so P concurrent ranks never ask for more kernel
//!   threads than the machine has cores;
//! * [`parallel_chunks`] — the fork-join primitive the blocked GEMM builds
//!   its pack and macro-tile phases from: a chunk counter shared between
//!   the submitting thread and `width - 1` pool workers.
//!
//! Work distribution is a chunked queue: a parallel region shares one
//! atomic chunk counter between the submitting thread and the workers, so
//! the submitter always makes progress even when every worker is busy (or
//! when the pool is empty on a 1-core host) — no phase ever *requires* a
//! worker, and no enqueued job ever blocks waiting for another job, so
//! there is no hand-off that can deadlock even when many ranks submit
//! concurrently. `submit` wakes exactly as many workers as it enqueued
//! jobs (counted `notify_one`s, not `notify_all`): waking the whole pool
//! for a two-job region would stampede every parked thread through the
//! queue lock just to go back to sleep — measurable contention when many
//! ranks submit small GEMMs at once.

use crate::prof;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One queued unit of pool work: the closure plus (when kernel profiling
/// is capturing) the submitter's capture handle and the enqueue timestamp,
/// so the popping worker can attribute the submit→wake gap.
pub(crate) struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    prof: Option<JobProf>,
}

struct JobProf {
    inner: Arc<prof::CaptureInner>,
    enqueue_ns: u64,
}

impl Job {
    /// An unprofiled job (the only kind tests and non-capturing submitters
    /// create).
    pub(crate) fn new(run: impl FnOnce() + Send + 'static) -> Self {
        Job {
            run: Box::new(run),
            prof: None,
        }
    }

    fn profiled(run: impl FnOnce() + Send + 'static, inner: Arc<prof::CaptureInner>) -> Self {
        Job {
            run: Box::new(run),
            prof: Some(JobProf {
                inner,
                enqueue_ns: prof::now_ns(),
            }),
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// Worker threads spawned so far (they are never torn down).
static WORKERS: AtomicUsize = AtomicUsize::new(0);
/// Process-wide cap from [`set_gemm_threads`]; 0 = unset.
static GLOBAL_CAP: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Per-thread cap from [`set_rank_gemm_threads`]; 0 = unset.
    static RANK_CAP: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        })
    })
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Job { run, prof: jp } = job;
        if let Some(jp) = jp {
            prof::note_wake(&jp.inner, jp.enqueue_ns);
        }
        // A panicking job must not kill the (permanent) worker; the
        // submitter observes the failure through the region's panic flag.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(run));
    }
}

/// Ensures at least `want` workers exist (capped at a sanity bound).
fn ensure_workers(want: usize) {
    const MAX_WORKERS: usize = 256;
    let want = want.min(MAX_WORKERS);
    loop {
        let have = WORKERS.load(Ordering::Acquire);
        if have >= want {
            return;
        }
        if WORKERS
            .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        let sh = Arc::clone(shared());
        let spawned = std::thread::Builder::new()
            .name(format!("dense-gemm-{have}"))
            .spawn(move || worker_loop(sh))
            .is_ok();
        if !spawned {
            // Could not spawn (resource limits): stop asking for more.
            WORKERS.store(have, Ordering::Release);
            return;
        }
    }
}

/// Enqueues `jobs` for the pool, growing it up to `jobs.len()` workers.
/// Wakes exactly `jobs.len()` parked workers — one `notify_one` per job —
/// instead of `notify_all`, so concurrent small submissions from many rank
/// threads do not stampede the whole pool through the queue lock.
pub(crate) fn submit(jobs: Vec<Job>) {
    if jobs.is_empty() {
        return;
    }
    ensure_workers(jobs.len());
    let sh = shared();
    let handle = jobs
        .iter()
        .find_map(|j| j.prof.as_ref().map(|p| Arc::clone(&p.inner)));
    let mut queue = sh.queue.lock().unwrap_or_else(|e| e.into_inner());
    let n = jobs.len();
    queue.extend(jobs);
    if let Some(h) = handle {
        prof::note_queue_depth(&h, queue.len());
    }
    drop(queue);
    // Counted wakeups sized to the job count. Spurious extra notifies (a
    // notified worker may grab two jobs before another wakes) are harmless:
    // a woken worker with an empty queue just re-parks.
    for _ in 0..n {
        sh.available.notify_one();
    }
}

/// Shared state of one [`parallel_chunks`] region.
struct Region {
    /// Next chunk to claim (shared by the caller and the helper jobs).
    next: AtomicUsize,
    /// Total chunks in the region.
    total: usize,
    /// (chunks finished, helper jobs exited) — both guarded together so a
    /// single condvar covers the two completion criteria.
    progress: Mutex<(usize, usize)>,
    done: Condvar,
    /// Set when any chunk body panicked.
    panicked: AtomicBool,
}

impl Region {
    fn bump_finished(&self) {
        let mut p = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        p.0 += 1;
        drop(p);
        self.done.notify_all();
    }

    fn bump_jobs_exited(&self) {
        let mut p = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        p.1 += 1;
        drop(p);
        self.done.notify_all();
    }

    /// Runs the claim loop on the current thread. Every claimed chunk is
    /// counted as finished even if its body panics (the flag records the
    /// failure); claiming stops early once a panic is observed.
    fn claim_loop(&self, body: &(dyn Fn(usize) + Sync)) {
        while !self.panicked.load(Ordering::Relaxed) {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.total {
                break;
            }
            let ok = std::panic::catch_unwind(AssertUnwindSafe(|| body(chunk))).is_ok();
            if !ok {
                self.panicked.store(true, Ordering::Relaxed);
            }
            self.bump_finished();
        }
    }
}

/// Runs `body(chunk)` for every `chunk in 0..nchunks`, distributed over the
/// calling thread plus up to `width - 1` pool workers, and returns only
/// once every chunk has completed. This is the fork-join primitive under
/// the blocked GEMM's parallel pack and macro-tile phases.
///
/// Chunks are claimed dynamically from one shared atomic counter — the
/// classic chunk-counter scheme — so the caller always makes progress even
/// if every pool worker is busy with other ranks' regions, and load
/// imbalance between chunks self-schedules. Helper jobs never block inside
/// the region (there are no barriers), so regions from concurrent ranks
/// can interleave on the pool without any risk of deadlock.
///
/// If any chunk body panics (on a worker or on the caller), the region
/// drains safely — remaining participants stop claiming, in-flight bodies
/// finish — and the panic is re-raised on the caller.
///
/// # Safety (internal)
///
/// `body` may borrow the caller's stack (`'a`, not `'static`); the
/// lifetime is erased to hand it to the pool. Soundness rests on the
/// completion protocol, which guarantees no job can touch `body` after
/// this function returns:
///
/// * the normal path returns only after `finished == nchunks`; at that
///   point the counter is exhausted, so a still-queued helper job's first
///   claim fails and it exits without ever invoking `body`;
/// * the panic path (caller's own chunk panicked) poisons the counter and
///   waits for every helper *job* to exit before unwinding;
/// * helper jobs only dereference the erased pointer to invoke `body` for
///   a successfully claimed chunk (`chunk < total`).
pub(crate) fn parallel_chunks<'a>(
    width: usize,
    nchunks: usize,
    body: &(dyn Fn(usize) + Sync + 'a),
) {
    if nchunks == 0 {
        return;
    }
    let width = width.min(nchunks).max(1);
    if width == 1 {
        for chunk in 0..nchunks {
            body(chunk);
        }
        return;
    }

    let region = Arc::new(Region {
        next: AtomicUsize::new(0),
        total: nchunks,
        progress: Mutex::new((0, 0)),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });

    // SAFETY: see the function docs — the completion protocol below keeps
    // `body` alive for as long as any job can possibly invoke it.
    let body_erased: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(body) };

    let prof_handle = prof::active_handle();
    if let Some(h) = &prof_handle {
        prof::note_region(h);
    }

    let helpers = width - 1;
    let jobs: Vec<Job> = (0..helpers)
        .map(|_| {
            let region = Arc::clone(&region);
            let run = move || {
                region.claim_loop(body_erased);
                region.bump_jobs_exited();
            };
            match &prof_handle {
                Some(h) => Job::profiled(run, Arc::clone(h)),
                None => Job::new(run),
            }
        })
        .collect();
    submit(jobs);

    // The caller participates through the same counter, so the region
    // completes even if no worker ever picks the helper jobs up.
    let caller_result = std::panic::catch_unwind(AssertUnwindSafe(|| region.claim_loop(body)));

    if let Err(payload) = caller_result {
        // `claim_loop` contains each chunk's panic; reaching here means the
        // machinery itself failed. Poison the counter so stale jobs exit at
        // their first claim, then wait for every helper job to leave the
        // region before unwinding frees the borrows behind `body`.
        region.panicked.store(true, Ordering::Relaxed);
        region.next.store(usize::MAX / 2, Ordering::Relaxed);
        let mut p = region.progress.lock().unwrap_or_else(|e| e.into_inner());
        while p.1 < helpers {
            p = region.done.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        drop(p);
        std::panic::resume_unwind(payload);
    }

    // Wait for completion. Normally that is "every chunk finished"; after a
    // body panic the participants stop claiming, so the finished count can
    // stall short of `nchunks` — then the exit condition is "every helper
    // job has left the region" (the caller's own claim loop has already
    // returned), which equally guarantees nobody can still touch `body`.
    // (Helper jobs still queued behind other ranks' work find the counter
    // exhausted and exit without touching `body`; they only hold the Arc'd
    // region.)
    let wait_t0 = prof_handle.as_ref().map(|_| prof::now_ns());
    let mut p = region.progress.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if p.0 >= nchunks {
            break;
        }
        if region.panicked.load(Ordering::Relaxed) && p.1 >= helpers {
            break;
        }
        p = region.done.wait(p).unwrap_or_else(|e| e.into_inner());
    }
    drop(p);
    if let (Some(h), Some(t0)) = (&prof_handle, wait_t0) {
        prof::note_barrier(h, t0);
    }

    if region.panicked.load(Ordering::Relaxed) {
        panic!("a dense-gemm parallel region chunk panicked");
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn env_cap() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DENSE_GEMM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0)
    })
}

/// The process-wide kernel-thread budget *before* any per-rank override:
/// `set_gemm_threads()` if called, else `DENSE_GEMM_THREADS`, else
/// `available_parallelism()`.
pub fn base_gemm_threads() -> usize {
    let explicit = GLOBAL_CAP.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    let env = env_cap();
    if env > 0 {
        return env;
    }
    hardware_threads()
}

/// Caps the number of kernel threads any single GEMM call may use,
/// process-wide. Overrides `DENSE_GEMM_THREADS`.
pub fn set_gemm_threads(n: usize) {
    GLOBAL_CAP.store(n.max(1), Ordering::Relaxed);
}

/// Sets (or with `None` clears) the kernel-thread cap for GEMM calls made
/// *from the current thread*. This is the per-rank knob: `msgpass`'s
/// `World::run` sets it on every rank thread to
/// `base_gemm_threads() / world_size` (min 1), so the ranks together never
/// request more kernel threads than the base budget. A set rank cap takes
/// precedence over the process-wide value — tests use that to pin exact
/// widths.
pub fn set_rank_gemm_threads(n: Option<usize>) {
    RANK_CAP.with(|c| c.set(n.map_or(0, |n| n.max(1))));
}

/// The per-rank kernel-thread cap `World::run` should apply for a world of
/// `world_size` ranks: an even split of the base budget, min 1.
pub fn rank_threads_for(world_size: usize) -> usize {
    (base_gemm_threads() / world_size.max(1)).max(1)
}

/// The effective kernel-thread width for a GEMM call on this thread.
pub fn gemm_threads() -> usize {
    let rank = RANK_CAP.with(|c| c.get());
    if rank > 0 {
        rank
    } else {
        base_gemm_threads()
    }
}

/// Number of pool worker threads currently alive (excludes submitters).
pub fn pool_workers() -> usize {
    WORKERS.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn caps_resolve_in_precedence_order() {
        // Thread-local cap wins; clearing it falls back to the base value.
        set_rank_gemm_threads(Some(3));
        assert_eq!(gemm_threads(), 3);
        set_rank_gemm_threads(None);
        assert!(gemm_threads() >= 1);
    }

    #[test]
    fn submitted_jobs_run() {
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                Job::new(move || {
                    tx.send(i).unwrap();
                })
            })
            .collect();
        submit(jobs);
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(pool_workers() >= 1);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        submit(vec![Job::new(|| panic!("job panic"))]);
        // The pool must still process subsequent jobs.
        let (tx, rx) = mpsc::channel();
        submit(vec![Job::new(move || {
            tx.send(42u8).unwrap();
        })]);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }

    #[test]
    fn parallel_chunks_covers_every_chunk_exactly_once() {
        const N: usize = 97;
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        parallel_chunks(4, N, &|chunk| {
            hits[chunk].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn parallel_chunks_width_one_runs_inline() {
        let before = pool_workers();
        let order = Mutex::new(Vec::new());
        parallel_chunks(1, 5, &|chunk| {
            order.lock().unwrap().push(chunk);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(pool_workers(), before, "width 1 must not grow the pool");
    }

    #[test]
    fn parallel_chunks_propagates_body_panic() {
        let result = std::panic::catch_unwind(|| {
            parallel_chunks(3, 16, &|chunk| {
                if chunk == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        });
        assert!(result.is_err(), "region must re-raise the chunk panic");
        // And the pool must still be serviceable afterwards.
        let ran = AtomicUsize::new(0);
        parallel_chunks(3, 8, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn poisoned_region_drains_and_pool_stays_usable_for_gemm() {
        use crate::gemm::{gemm, gemm_naive, GemmOp};
        use crate::mat::Mat;
        use crate::random::fill_random;

        set_rank_gemm_threads(Some(4));
        // A chunk body panics mid-region: the region must poison, every
        // participant must drain, and the panic must re-surface here.
        let result = std::panic::catch_unwind(|| {
            parallel_chunks(4, 64, &|chunk| {
                if chunk == 13 {
                    panic!("chunk 13 exploded");
                }
                std::thread::yield_now();
            });
        });
        assert!(result.is_err(), "region must re-raise the chunk panic");

        // The drain left no stale jobs claiming into freed stack frames and
        // the workers survived the unwind: the next *multiply* on the same
        // pool must run the full parallel path and stay correct.
        let mut a = Mat::<f64>::zeros(130, 70);
        let mut b = Mat::<f64>::zeros(70, 90);
        let mut c = Mat::<f64>::zeros(130, 90);
        let mut c_ref = Mat::<f64>::zeros(130, 90);
        fill_random(&mut a, 21);
        fill_random(&mut b, 22);
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_ref,
        );
        set_rank_gemm_threads(None);
        assert!(
            c.max_abs_diff(&c_ref) < 1e-10,
            "post-panic multiply is wrong: the pool did not recover"
        );
    }

    #[test]
    fn nested_and_concurrent_regions_complete() {
        // Many submitter threads sharing the pool at once — the scenario
        // the counted notify_one wakeups target (16 ranks, small GEMMs).
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    for _ in 0..8 {
                        parallel_chunks(3, 11, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16 * 8 * 11);
    }
}
