//! Persistent worker pool for the local GEMM kernel.
//!
//! The pre-packed GEMM spawned fresh OS threads with `std::thread::scope`
//! on *every call* and sized itself to `available_parallelism()` — so a
//! 16-rank `msgpass` run oversubscribed the host 16×. This module replaces
//! that with:
//!
//! * a lazy global pool of parked worker threads (`dense-gemm-N`), spawned
//!   once and reused by every GEMM call in the process;
//! * a *thread cap* resolved per calling thread:
//!   `set_gemm_threads()` (process-wide) > `DENSE_GEMM_THREADS` (env) >
//!   `available_parallelism()`, further overridden per rank thread by
//!   [`set_rank_gemm_threads`] — which `msgpass::World::run` sets to
//!   `base / world_size` so P concurrent ranks never ask for more kernel
//!   threads than the machine has cores.
//!
//! Work distribution is a chunked queue: a parallel region shares one
//! atomic chunk counter between the submitting thread and the workers, so
//! the submitter always makes progress even when every worker is busy (or
//! when the pool is empty on a 1-core host) — there is no hand-off that
//! can deadlock. Jobs are type-erased `FnOnce` closures over `Arc`-owned
//! state, which keeps the whole pool safe Rust: workers never borrow the
//! caller's stack.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// Worker threads spawned so far (they are never torn down).
static WORKERS: AtomicUsize = AtomicUsize::new(0);
/// Process-wide cap from [`set_gemm_threads`]; 0 = unset.
static GLOBAL_CAP: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Per-thread cap from [`set_rank_gemm_threads`]; 0 = unset.
    static RANK_CAP: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        })
    })
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // A panicking job must not kill the (permanent) worker; the
        // submitter observes the failure through its closed result channel.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

/// Ensures at least `want` workers exist (capped at a sanity bound).
fn ensure_workers(want: usize) {
    const MAX_WORKERS: usize = 256;
    let want = want.min(MAX_WORKERS);
    loop {
        let have = WORKERS.load(Ordering::Acquire);
        if have >= want {
            return;
        }
        if WORKERS
            .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        let sh = Arc::clone(shared());
        let spawned = std::thread::Builder::new()
            .name(format!("dense-gemm-{have}"))
            .spawn(move || worker_loop(sh))
            .is_ok();
        if !spawned {
            // Could not spawn (resource limits): stop asking for more.
            WORKERS.store(have, Ordering::Release);
            return;
        }
    }
}

/// Enqueues `jobs` for the pool, growing it up to `jobs.len()` workers.
pub(crate) fn submit(jobs: Vec<Job>) {
    if jobs.is_empty() {
        return;
    }
    ensure_workers(jobs.len());
    let sh = shared();
    let mut queue = sh.queue.lock().unwrap_or_else(|e| e.into_inner());
    let n = jobs.len();
    queue.extend(jobs);
    drop(queue);
    if n == 1 {
        sh.available.notify_one();
    } else {
        sh.available.notify_all();
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn env_cap() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DENSE_GEMM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0)
    })
}

/// The process-wide kernel-thread budget *before* any per-rank override:
/// `set_gemm_threads()` if called, else `DENSE_GEMM_THREADS`, else
/// `available_parallelism()`.
pub fn base_gemm_threads() -> usize {
    let explicit = GLOBAL_CAP.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    let env = env_cap();
    if env > 0 {
        return env;
    }
    hardware_threads()
}

/// Caps the number of kernel threads any single GEMM call may use,
/// process-wide. Overrides `DENSE_GEMM_THREADS`.
pub fn set_gemm_threads(n: usize) {
    GLOBAL_CAP.store(n.max(1), Ordering::Relaxed);
}

/// Sets (or with `None` clears) the kernel-thread cap for GEMM calls made
/// *from the current thread*. This is the per-rank knob: `msgpass`'s
/// `World::run` sets it on every rank thread to
/// `base_gemm_threads() / world_size` (min 1), so the ranks together never
/// request more kernel threads than the base budget. A set rank cap takes
/// precedence over the process-wide value — tests use that to pin exact
/// widths.
pub fn set_rank_gemm_threads(n: Option<usize>) {
    RANK_CAP.with(|c| c.set(n.map_or(0, |n| n.max(1))));
}

/// The per-rank kernel-thread cap `World::run` should apply for a world of
/// `world_size` ranks: an even split of the base budget, min 1.
pub fn rank_threads_for(world_size: usize) -> usize {
    (base_gemm_threads() / world_size.max(1)).max(1)
}

/// The effective kernel-thread width for a GEMM call on this thread.
pub fn gemm_threads() -> usize {
    let rank = RANK_CAP.with(|c| c.get());
    if rank > 0 {
        rank
    } else {
        base_gemm_threads()
    }
}

/// Number of pool worker threads currently alive (excludes submitters).
pub fn pool_workers() -> usize {
    WORKERS.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn caps_resolve_in_precedence_order() {
        // Thread-local cap wins; clearing it falls back to the base value.
        set_rank_gemm_threads(Some(3));
        assert_eq!(gemm_threads(), 3);
        set_rank_gemm_threads(None);
        assert!(gemm_threads() >= 1);
    }

    #[test]
    fn submitted_jobs_run() {
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || {
                    tx.send(i).unwrap();
                }) as Job
            })
            .collect();
        submit(jobs);
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(pool_workers() >= 1);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        submit(vec![Box::new(|| panic!("job panic")) as Job]);
        // The pool must still process subsequent jobs.
        let (tx, rx) = mpsc::channel();
        submit(vec![Box::new(move || {
            tx.send(42u8).unwrap();
        }) as Job]);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }
}
