//! Dense matrix substrate for the CA3DMM reproduction.
//!
//! This crate provides everything the distributed algorithms need from a
//! *local* linear-algebra library (the role Intel MKL plays in the paper's
//! artifact):
//!
//! * [`Mat`] — an owned, row-major dense matrix over any [`Scalar`]
//!   (`f32`/`f64`), with block read/write views;
//! * [`gemm`](mod@gemm) — a blocked, cache-tiled, rayon-parallel local matrix
//!   multiplication `C += alpha * op(A) * op(B)`, plus a naive reference
//!   kernel used to validate it;
//! * [`part`] — block-partition arithmetic: [`part::split_even`] (the
//!   paper's ⌈d/p⌉ / ⌊d/p⌋ partitioning), [`part::Rect`] rectangle algebra
//!   used by the redistribution subroutine;
//! * [`linalg`] — small serial kernels (Cholesky, triangular inverse/solve)
//!   for the driver applications;
//! * [`random`] — seeded random fills so every distributed test is
//!   reproducible;
//! * [`testing`] — tolerance helpers for comparing distributed results to
//!   serial references.

pub mod gemm;
pub mod linalg;
pub mod mat;
pub mod part;
pub mod random;
pub mod scalar;
pub mod testing;

pub use gemm::{gemm, gemm_naive, GemmOp};
pub use mat::Mat;
pub use part::{split_even, Rect};
pub use scalar::Scalar;
