//! Dense matrix substrate for the CA3DMM reproduction.
//!
//! This crate provides everything the distributed algorithms need from a
//! *local* linear-algebra library (the role Intel MKL plays in the paper's
//! artifact):
//!
//! * [`Mat`] — an owned, row-major dense matrix over any [`Scalar`]
//!   (`f32`/`f64`), with block read/write views;
//! * [`gemm`](mod@gemm) — a packed, register-blocked local matrix
//!   multiplication `C = alpha * op(A) * op(B) + beta * C` parallelized over
//!   the persistent [`pool`] worker threads, plus a naive reference kernel
//!   used to validate it and the frozen pre-packing kernel
//!   ([`gemm::gemm_unpacked`]) used as the before/after benchmark baseline;
//! * [`kernel`] — the runtime-dispatched `mr×nr` register microkernels:
//!   a portable fallback plus AVX2+FMA and AVX-512 intrinsics kernels
//!   (wider `MR` on the f32 AVX-512 path), selected once per process from
//!   the CPUID probe (overridable via `DENSE_GEMM_KERNEL=portable|avx2|
//!   avx512` or [`kernel::set_gemm_kernel`]);
//! * [`pack`] — operand packing into microkernel panels (where transposes
//!   and `alpha` are absorbed; panel geometry follows the dispatched
//!   kernel);
//! * [`tune`] — the one-shot runtime autotuner that derives the KC/MC/NC
//!   cache blocking from sysfs cache topology *per kernel geometry*
//!   (overridable via `DENSE_GEMM_TUNE=mc:kc:nc` or
//!   [`tune::set_gemm_blocking`]), probes each kernel's single-core peak
//!   for the roofline, and decides NUMA-aware packing
//!   ([`tune::numa_packing`], `DENSE_GEMM_NUMA`);
//! * [`pool`] — the lazy global worker pool and the kernel-thread knobs
//!   (`DENSE_GEMM_THREADS`, [`pool::set_gemm_threads`], and the per-rank cap
//!   `msgpass::World::run` applies via [`pool::set_rank_gemm_threads`]);
//! * [`prof`] — kernel-level observability: a per-thread lock-free span
//!   recorder plus pool telemetry, aggregated per capture into a
//!   [`prof::KernelProfile`] with a roofline summary (enable with
//!   `DENSE_GEMM_PROF` or [`prof::set_gemm_profiling`]; near-zero cost when
//!   off);
//! * [`part`] — block-partition arithmetic: [`part::split_even`] (the
//!   paper's ⌈d/p⌉ / ⌊d/p⌋ partitioning), [`part::Rect`] rectangle algebra
//!   used by the redistribution subroutine;
//! * [`linalg`] — small serial kernels (Cholesky, triangular inverse/solve)
//!   for the driver applications;
//! * [`random`] — seeded random fills so every distributed test is
//!   reproducible;
//! * [`testing`] — tolerance helpers for comparing distributed results to
//!   serial references.

pub mod gemm;
pub mod kernel;
pub mod linalg;
pub mod mat;
pub mod pack;
pub mod part;
pub mod pool;
pub mod prof;
pub mod random;
pub mod scalar;
pub mod testing;
pub mod tune;

pub use gemm::{gemm, gemm_naive, gemm_unpacked, GemmOp};
pub use kernel::{gemm_kernel, set_gemm_kernel, KernelKind};
pub use mat::Mat;
pub use part::{split_even, Rect};
pub use pool::{gemm_threads, set_gemm_threads};
pub use prof::{profiling_enabled, set_gemm_profiling, KernelProfile, PoolTelemetry, ProfSpan};
pub use scalar::Scalar;
pub use tune::{
    numa_nodes, numa_packing, probed_peak_gflops, probed_peak_gflops_for, set_gemm_blocking,
    Blocking,
};
