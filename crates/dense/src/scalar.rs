//! The element type abstraction shared by every crate in the workspace.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point matrix element.
///
/// The paper's artifact supports `float` and `double`; this trait plays the
/// same role. Everything in the workspace — local GEMM, the message-passing
/// runtime, redistribution, and the distributed algorithms — is generic over
/// `Scalar`, and the test suites run both instantiations.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;

    /// Lossless conversion from `f64` (lossy for `f32`, as in any BLAS).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `max` that propagates neither NaN nor sign tricks; used for norms.
    fn max_val(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_identities() {
        assert_eq!(<f64 as Scalar>::ZERO + <f64 as Scalar>::ONE, 1.0);
        assert_eq!(<f64 as Scalar>::from_f64(2.5), 2.5);
        assert_eq!(2.5f64.to_f64(), 2.5);
    }

    #[test]
    fn f32_round_trip_is_lossy_but_close() {
        let x = 1.000_000_1_f64;
        let y = <f32 as Scalar>::from_f64(x).to_f64();
        assert!((x - y).abs() < 1e-6);
    }

    #[test]
    fn abs_and_max() {
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(Scalar::max_val(2.0f32, 5.0f32), 5.0);
        assert_eq!(Scalar::max_val(5.0f64, 2.0f64), 5.0);
    }
}
