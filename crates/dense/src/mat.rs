//! Owned row-major dense matrices with block accessors.

use crate::part::Rect;
use crate::scalar::Scalar;

/// An owned, row-major, densely stored matrix.
///
/// `Mat` is deliberately minimal: the distributed algorithms only ever need
/// contiguous local blocks, block copies in and out (for packing messages),
/// transposition, and elementwise accumulation. Leading-dimension tricks are
/// avoided — every `Mat` owns exactly `rows * cols` elements — which keeps
/// message packing trivial and bug-resistant.
#[derive(Clone, PartialEq)]
pub struct Mat<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Mat<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a generator `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements (any dimension is zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume and return the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies the sub-block at `rect` (row/col offsets are in *this* matrix)
    /// into a fresh matrix.
    ///
    /// # Panics
    /// If `rect` does not fit inside the matrix.
    pub fn block(&self, rect: Rect) -> Mat<T> {
        assert!(
            rect.row0 + rect.rows <= self.rows && rect.col0 + rect.cols <= self.cols,
            "block {rect:?} outside {}x{}",
            self.rows,
            self.cols
        );
        let mut out = Vec::with_capacity(rect.rows * rect.cols);
        for i in 0..rect.rows {
            let src = (rect.row0 + i) * self.cols + rect.col0;
            out.extend_from_slice(&self.data[src..src + rect.cols]);
        }
        Mat::from_vec(rect.rows, rect.cols, out)
    }

    /// Writes `src` over the sub-block at `rect`.
    ///
    /// # Panics
    /// If shapes disagree or `rect` does not fit.
    pub fn set_block(&mut self, rect: Rect, src: &Mat<T>) {
        assert_eq!((rect.rows, rect.cols), src.shape(), "block shape mismatch");
        assert!(
            rect.row0 + rect.rows <= self.rows && rect.col0 + rect.cols <= self.cols,
            "block {rect:?} outside {}x{}",
            self.rows,
            self.cols
        );
        for i in 0..rect.rows {
            let dst = (rect.row0 + i) * self.cols + rect.col0;
            self.data[dst..dst + rect.cols].copy_from_slice(src.row(i));
        }
    }

    /// Accumulates `src` into the sub-block at `rect` (`self[rect] += src`).
    pub fn add_block(&mut self, rect: Rect, src: &Mat<T>) {
        assert_eq!((rect.rows, rect.cols), src.shape(), "block shape mismatch");
        for i in 0..rect.rows {
            let dst = (rect.row0 + i) * self.cols + rect.col0;
            for (d, s) in self.data[dst..dst + rect.cols].iter_mut().zip(src.row(i)) {
                *d += *s;
            }
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat<T> {
        let mut out = Mat::zeros(self.cols, self.rows);
        // Tiled transpose: keeps both the read and the write streams within
        // cache lines for large matrices.
        const TILE: usize = 32;
        for ib in (0..self.rows).step_by(TILE) {
            for jb in (0..self.cols).step_by(TILE) {
                let imax = (ib + TILE).min(self.rows);
                let jmax = (jb + TILE).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// `self += other`, elementwise.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn add_assign(&mut self, other: &Mat<T>) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Max-norm of the elementwise difference, as `f64`.
    pub fn max_abs_diff(&self, other: &Mat<T>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Max-norm of the matrix, as `f64`.
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|a| a.abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm, accumulated in f64.
    pub fn fro_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|a| {
                let v = a.to_f64();
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl<T: Scalar> std::fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:10.4} ", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Mat::<f64>::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_row_major() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_checked() {
        let _ = Mat::from_vec(2, 2, vec![1.0f64; 3]);
    }

    #[test]
    fn block_copy_round_trip() {
        let m = Mat::from_fn(5, 6, |i, j| (i * 6 + j) as f64);
        let r = Rect::new(1, 2, 3, 3);
        let b = m.block(r);
        assert_eq!(b.shape(), (3, 3));
        assert_eq!(b.get(0, 0), m.get(1, 2));
        assert_eq!(b.get(2, 2), m.get(3, 4));

        let mut m2 = Mat::zeros(5, 6);
        m2.set_block(r, &b);
        assert_eq!(m2.get(1, 2), m.get(1, 2));
        assert_eq!(m2.get(0, 0), 0.0);
    }

    #[test]
    fn add_block_accumulates() {
        let mut m = Mat::from_fn(3, 3, |_, _| 1.0f64);
        let b = Mat::from_fn(2, 2, |_, _| 2.0f64);
        m.add_block(Rect::new(1, 1, 2, 2), &b);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(2, 2), 3.0);
    }

    #[test]
    fn transpose_small_and_rect() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn transpose_large_tiled_matches_naive() {
        let m = Mat::from_fn(70, 45, |i, j| (i * 1000 + j) as f64);
        let t = m.transpose();
        for i in 0..70 {
            for j in 0..45 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn norms() {
        let a = Mat::from_vec(1, 3, vec![3.0f64, -4.0, 0.0]);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
        let b = Mat::from_vec(1, 3, vec![3.0f64, -4.0, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Mat::from_vec(1, 2, vec![1.0f32, 2.0]);
        let b = Mat::from_vec(1, 2, vec![10.0f32, 20.0]);
        a.scale(2.0);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
    }

    #[test]
    fn empty_matrices_are_fine() {
        let m = Mat::<f64>::zeros(0, 5);
        assert!(m.is_empty());
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 0));
    }
}
