//! Block-partition arithmetic.
//!
//! The paper partitions each dimension `d` over `p` processes into parts of
//! size ⌈d/p⌉ or ⌊d/p⌋ (§III-A). [`split_even`] produces exactly that
//! partition, and [`Rect`] provides the rectangle algebra the redistribution
//! subroutine (Algorithm 1 steps 4/8) needs to compute which sub-blocks move
//! between which pairs of ranks.

/// A rectangular index region of a global matrix: rows
/// `row0 .. row0+rows`, columns `col0 .. col0+cols`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rect {
    /// First row (inclusive).
    pub row0: usize,
    /// First column (inclusive).
    pub col0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Rect {
    /// Creates a rectangle.
    pub const fn new(row0: usize, col0: usize, rows: usize, cols: usize) -> Self {
        Self {
            row0,
            col0,
            rows,
            cols,
        }
    }

    /// The rectangle covering a whole `rows × cols` matrix.
    pub const fn full(rows: usize, cols: usize) -> Self {
        Self::new(0, 0, rows, cols)
    }

    /// Element count.
    #[inline]
    pub const fn area(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the rectangle contains no elements.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// One-past-the-end row.
    #[inline]
    pub const fn row_end(&self) -> usize {
        self.row0 + self.rows
    }

    /// One-past-the-end column.
    #[inline]
    pub const fn col_end(&self) -> usize {
        self.col0 + self.cols
    }

    /// Intersection of two rectangles; `None` when empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let row0 = self.row0.max(other.row0);
        let col0 = self.col0.max(other.col0);
        let row_end = self.row_end().min(other.row_end());
        let col_end = self.col_end().min(other.col_end());
        if row0 < row_end && col0 < col_end {
            Some(Rect::new(row0, col0, row_end - row0, col_end - col0))
        } else {
            None
        }
    }

    /// True if `other` lies fully inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        other.row0 >= self.row0
            && other.col0 >= self.col0
            && other.row_end() <= self.row_end()
            && other.col_end() <= self.col_end()
    }

    /// The same region of the transposed matrix (rows and columns swap).
    pub const fn transposed(&self) -> Rect {
        Rect::new(self.col0, self.row0, self.cols, self.rows)
    }

    /// Translates the rectangle so that it is relative to `origin`
    /// (which must contain it): used to map a global region into the local
    /// buffer that stores `origin`.
    pub fn relative_to(&self, origin: &Rect) -> Rect {
        debug_assert!(origin.contains(self), "{self:?} not inside {origin:?}");
        Rect::new(
            self.row0 - origin.row0,
            self.col0 - origin.col0,
            self.rows,
            self.cols,
        )
    }
}

/// Splits dimension `n` into `p` nearly equal parts (sizes differ by ≤ 1),
/// returning the part sizes. The first `n mod p` parts get the extra element,
/// matching the ⌈n/p⌉/⌊n/p⌋ convention of the paper.
///
/// `p = 0` is not meaningful and panics.
pub fn split_even(n: usize, p: usize) -> Vec<usize> {
    assert!(p > 0, "cannot split into zero parts");
    let base = n / p;
    let extra = n % p;
    (0..p)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

/// Prefix offsets for a list of part sizes: `offsets(sizes)[i]` is the global
/// index where part `i` starts; a final entry holds the total.
pub fn offsets(sizes: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(sizes.len() + 1);
    let mut acc = 0;
    for &s in sizes {
        out.push(acc);
        acc += s;
    }
    out.push(acc);
    out
}

/// The half-open range `[start, end)` of part `i` when `n` is split evenly
/// into `p` parts. Equivalent to (but cheaper than) indexing
/// `offsets(&split_even(n, p))`.
pub fn even_range(n: usize, p: usize, i: usize) -> (usize, usize) {
    assert!(i < p, "part index {i} out of {p}");
    let base = n / p;
    let extra = n % p;
    let start = if i < extra {
        i * (base + 1)
    } else {
        extra * (base + 1) + (i - extra) * base
    };
    let len = if i < extra { base + 1 } else { base };
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_sums_and_balance() {
        for n in [0usize, 1, 7, 16, 100, 101] {
            for p in [1usize, 2, 3, 7, 16, 33] {
                let parts = split_even(n, p);
                assert_eq!(parts.len(), p);
                assert_eq!(parts.iter().sum::<usize>(), n);
                let mx = *parts.iter().max().unwrap();
                let mn = *parts.iter().min().unwrap();
                assert!(mx - mn <= 1, "unbalanced split {parts:?}");
            }
        }
    }

    #[test]
    fn split_even_matches_ceil_floor() {
        let parts = split_even(10, 3);
        assert_eq!(parts, vec![4, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_even_zero_parts_panics() {
        let _ = split_even(5, 0);
    }

    #[test]
    fn offsets_prefix_sums() {
        assert_eq!(offsets(&[4, 3, 3]), vec![0, 4, 7, 10]);
        assert_eq!(offsets(&[]), vec![0]);
    }

    #[test]
    fn even_range_consistent_with_split() {
        for n in [0usize, 5, 17, 64] {
            for p in [1usize, 2, 5, 8] {
                let offs = offsets(&split_even(n, p));
                for i in 0..p {
                    assert_eq!(even_range(n, p, i), (offs[i], offs[i + 1]));
                }
            }
        }
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 2, 2)));
        let c = Rect::new(4, 0, 2, 2);
        assert_eq!(a.intersect(&c), None); // touching edges do not intersect
    }

    #[test]
    fn rect_contains_and_relative() {
        let outer = Rect::new(2, 3, 10, 10);
        let inner = Rect::new(4, 5, 2, 2);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert_eq!(inner.relative_to(&outer), Rect::new(2, 2, 2, 2));
    }

    #[test]
    fn rect_transpose_involution() {
        let r = Rect::new(1, 2, 3, 4);
        assert_eq!(r.transposed().transposed(), r);
        assert_eq!(r.transposed(), Rect::new(2, 1, 4, 3));
    }

    #[test]
    fn rect_area_and_empty() {
        assert_eq!(Rect::new(0, 0, 3, 4).area(), 12);
        assert!(Rect::new(5, 5, 0, 4).is_empty());
        assert!(!Rect::new(0, 0, 1, 1).is_empty());
    }
}
