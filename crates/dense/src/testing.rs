//! Tolerance helpers for validating distributed results.

use crate::mat::Mat;
use crate::scalar::Scalar;

/// The relative tolerance used when comparing a distributed product against
/// a serial reference: floating-point summation order differs between the
/// two, so the error grows with the inner dimension `k`.
pub fn gemm_tolerance<T: Scalar>(k: usize) -> f64 {
    // Each output element is a length-k dot product of values in (-1,1);
    // worst-case forward error of recursive summation is O(k * eps) with a
    // modest constant.
    8.0 * (k.max(4) as f64) * T::EPSILON.to_f64()
}

/// Asserts `‖got − want‖∞ ≤ tol · max(1, ‖want‖∞)`, with a useful message.
///
/// # Panics
/// When the tolerance is exceeded (that is the point).
pub fn assert_close<T: Scalar>(got: &Mat<T>, want: &Mat<T>, tol: f64, what: &str) {
    assert_eq!(
        got.shape(),
        want.shape(),
        "{what}: shape mismatch {:?} vs {:?}",
        got.shape(),
        want.shape()
    );
    let scale = want.max_abs().max(1.0);
    let diff = got.max_abs_diff(want);
    assert!(
        diff <= tol * scale,
        "{what}: max abs diff {diff:.3e} exceeds tol {tol:.3e} * scale {scale:.3e}"
    );
}

/// Asserts a distributed GEMM result against its serial reference with the
/// standard [`gemm_tolerance`].
pub fn assert_gemm_close<T: Scalar>(got: &Mat<T>, want: &Mat<T>, k: usize, what: &str) {
    assert_close(got, want, gemm_tolerance::<T>(k), what);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_scales_with_k() {
        assert!(gemm_tolerance::<f64>(1000) > gemm_tolerance::<f64>(10));
        assert!(gemm_tolerance::<f32>(10) > gemm_tolerance::<f64>(10));
    }

    #[test]
    fn close_matrices_pass() {
        let a = Mat::from_vec(1, 2, vec![1.0f64, 2.0]);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-14);
        assert_close(&a, &b, 1e-12, "perturbed");
    }

    #[test]
    #[should_panic(expected = "exceeds tol")]
    fn distant_matrices_fail() {
        let a = Mat::from_vec(1, 1, vec![1.0f64]);
        let b = Mat::from_vec(1, 1, vec![2.0f64]);
        assert_close(&a, &b, 1e-6, "unit");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_fails() {
        let a = Mat::<f64>::zeros(1, 2);
        let b = Mat::<f64>::zeros(2, 1);
        assert_close(&a, &b, 1.0, "shapes");
    }
}
