//! Small serial linear-algebra kernels used by the driver applications
//! (CholeskyQR, density-matrix purification): Cholesky factorization,
//! triangular inversion, and triangular solves. These run redundantly on
//! every rank for small reduced matrices, as the paper's driver algorithms
//! do (§V: CholeskyQR, Rayleigh–Ritz).

use crate::mat::Mat;
use crate::scalar::Scalar;

/// Cholesky factorization `G = RᵀR` of a symmetric positive-definite
/// matrix; returns the upper-triangular `R`.
///
/// # Panics
/// If `G` is not square or a pivot is non-positive (not numerically SPD).
pub fn cholesky_upper<T: Scalar>(g: &Mat<T>) -> Mat<T> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "Cholesky needs a square matrix");
    let mut r = Mat::<T>::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let mut sum = g.get(i, j);
            for k in 0..i {
                sum -= r.get(k, i) * r.get(k, j);
            }
            if i == j {
                assert!(
                    sum > T::ZERO,
                    "matrix not positive definite at pivot {i} (value {sum})"
                );
                r.set(i, j, T::from_f64(sum.to_f64().sqrt()));
            } else {
                r.set(i, j, sum / r.get(i, i));
            }
        }
    }
    r
}

/// Inverse of an upper-triangular matrix by back substitution.
///
/// # Panics
/// If `R` is not square or has a zero diagonal entry.
pub fn upper_triangular_inverse<T: Scalar>(r: &Mat<T>) -> Mat<T> {
    let n = r.rows();
    assert_eq!(r.cols(), n, "inverse needs a square matrix");
    let mut inv = Mat::<T>::zeros(n, n);
    for col in 0..n {
        for i in (0..=col).rev() {
            let mut sum = if i == col { T::ONE } else { T::ZERO };
            for k in i + 1..=col {
                sum -= r.get(i, k) * inv.get(k, col);
            }
            let d = r.get(i, i);
            assert!(d != T::ZERO, "singular triangular matrix at {i}");
            inv.set(i, col, sum / d);
        }
    }
    inv
}

/// Solves `R · X = B` for upper-triangular `R` (back substitution),
/// overwriting nothing; returns `X`.
pub fn upper_triangular_solve<T: Scalar>(r: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    let n = r.rows();
    assert_eq!(r.cols(), n, "solve needs a square triangular matrix");
    assert_eq!(b.rows(), n, "right-hand side height mismatch");
    let cols = b.cols();
    let mut x = Mat::<T>::zeros(n, cols);
    for c in 0..cols {
        for i in (0..n).rev() {
            let mut sum = b.get(i, c);
            for k in i + 1..n {
                sum -= r.get(i, k) * x.get(k, c);
            }
            x.set(i, c, sum / r.get(i, i));
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_naive, GemmOp};
    use crate::random::random_mat;

    /// A well-conditioned SPD test matrix: `G = MᵀM + n·I`.
    fn spd(n: usize, seed: u64) -> Mat<f64> {
        let m = random_mat::<f64>(n, n, seed);
        let mut g = Mat::from_fn(n, n, |i, j| if i == j { n as f64 } else { 0.0 });
        gemm_naive(GemmOp::Trans, GemmOp::NoTrans, 1.0, &m, &m, 1.0, &mut g);
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let g = spd(12, 3);
        let r = cholesky_upper(&g);
        // R is upper triangular
        for i in 0..12 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
        // R^T R == G
        let mut back = Mat::zeros(12, 12);
        gemm_naive(GemmOp::Trans, GemmOp::NoTrans, 1.0, &r, &r, 0.0, &mut back);
        assert!(back.max_abs_diff(&g) < 1e-10 * g.max_abs());
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn cholesky_rejects_indefinite() {
        let g = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        let _ = cholesky_upper(&g);
    }

    #[test]
    fn triangular_inverse() {
        let g = spd(9, 5);
        let r = cholesky_upper(&g);
        let inv = upper_triangular_inverse(&r);
        let mut prod = Mat::zeros(9, 9);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &r,
            &inv,
            0.0,
            &mut prod,
        );
        let eye = Mat::from_fn(9, 9, |i, j| if i == j { 1.0 } else { 0.0 });
        assert!(prod.max_abs_diff(&eye) < 1e-11);
    }

    #[test]
    fn triangular_solve_matches_inverse() {
        let g = spd(7, 9);
        let r = cholesky_upper(&g);
        let b = random_mat::<f64>(7, 3, 11);
        let x = upper_triangular_solve(&r, &b);
        let inv = upper_triangular_inverse(&r);
        let mut want = Mat::zeros(7, 3);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &inv,
            &b,
            0.0,
            &mut want,
        );
        assert!(x.max_abs_diff(&want) < 1e-10);
        // and R x == b
        let mut back = Mat::zeros(7, 3);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &r,
            &x,
            0.0,
            &mut back,
        );
        assert!(back.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn one_by_one() {
        let g = Mat::from_vec(1, 1, vec![4.0f64]);
        let r = cholesky_upper(&g);
        assert_eq!(r.get(0, 0), 2.0);
        assert_eq!(upper_triangular_inverse(&r).get(0, 0), 0.5);
    }
}
