//! Detects whether the compiling rustc can use AVX-512 `target_feature`
//! attributes and intrinsics (stabilized in Rust 1.89). The workspace MSRV
//! is older, so the AVX-512 microkernel is compiled only when the toolchain
//! supports it; on older compilers the dispatcher simply never offers it.

use std::process::Command;

fn rustc_minor() -> Option<u32> {
    let rustc = std::env::var_os("RUSTC")?;
    let out = Command::new(rustc).arg("--version").output().ok()?;
    let text = String::from_utf8(out.stdout).ok()?;
    // "rustc 1.89.0 (hash date)" / "rustc 1.95.0-nightly (…)"
    let ver = text.split_whitespace().nth(1)?;
    let minor = ver.split('.').nth(1)?;
    minor.parse().ok()
}

fn main() {
    println!("cargo:rustc-check-cfg=cfg(dense_avx512)");
    if rustc_minor().is_some_and(|m| m >= 89) {
        println!("cargo:rustc-cfg=dense_avx512");
    }
    println!("cargo:rerun-if-changed=build.rs");
}
