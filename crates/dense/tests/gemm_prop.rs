//! Property tests for the packed register-blocked GEMM against the
//! reference `gemm_naive`, plus the thread-width determinism pin.
//!
//! Shapes are drawn so that m/n/k cross the MR (4), NR (16), and
//! chunk (CHUNK_STRIPS * MR = 32 rows) boundaries in both directions, all
//! four `op(A)`/`op(B)` combinations appear, and alpha/beta sweep the edge
//! cases 0, 1, and negative values.

use dense::gemm::GemmOp;
use dense::{gemm, gemm_naive, Mat};
use proptest::prelude::*;

/// Deterministic value stream for matrix entries in roughly [-1, 1).
fn fill(seed: u64, rows: usize, cols: usize) -> Mat<f64> {
    let mut state = seed | 1;
    Mat::from_fn(rows, cols, |_, _| {
        // SplitMix64 step.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    })
}

fn op_of(t: bool) -> GemmOp {
    if t {
        GemmOp::Trans
    } else {
        GemmOp::NoTrans
    }
}

/// alpha/beta edge cases per the issue: 0, 1, negative, plus a generic
/// non-trivial pair.
const AB_CASES: [(f64, f64); 5] = [(0.0, 0.0), (1.0, 1.0), (-1.5, 0.0), (0.0, -2.0), (2.5, 0.5)];

fn storage(op: GemmOp, rows: usize, cols: usize) -> (usize, usize) {
    match op {
        GemmOp::NoTrans => (rows, cols),
        GemmOp::Trans => (cols, rows),
    }
}

/// Runs packed `gemm` and `gemm_naive` on the same inputs and compares
/// with a summation-order tolerance scaled by `k`.
fn check_against_naive(m: usize, n: usize, k: usize, ta: bool, tb: bool, ab_idx: usize, seed: u64) {
    let (op_a, op_b) = (op_of(ta), op_of(tb));
    let (alpha, beta) = AB_CASES[ab_idx % AB_CASES.len()];
    let (ar, ac) = storage(op_a, m, k);
    let (br, bc) = storage(op_b, k, n);
    let a = fill(seed ^ 0xA5A5, ar, ac);
    let b = fill(seed ^ 0x5A5A, br, bc);
    let c0 = fill(seed ^ 0xC3C3, m, n);

    let mut c_packed = c0.clone();
    gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_packed);
    let mut c_naive = c0.clone();
    gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c_naive);

    // |entries| <= 1, so the dot products are bounded by k; the two kernels
    // only differ in summation order.
    let tol = 1e-13 * (k.max(1) as f64) + 1e-14;
    for i in 0..m {
        for j in 0..n {
            let (got, want) = (c_packed.get(i, j), c_naive.get(i, j));
            prop_assert!(
                (got - want).abs() <= tol,
                "C[{i}][{j}]: packed {got} vs naive {want} \
                 (m={m} n={n} k={k} ta={ta} tb={tb} alpha={alpha} beta={beta})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random shapes crossing the MR/NR/chunk boundaries, all four op
    /// combinations, alpha/beta edge cases.
    #[test]
    fn packed_matches_naive(
        m in 1usize..70,
        n in 1usize..40,
        k in 1usize..48,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        check_against_naive(m, n, k, ta, tb, ab_idx, seed);
    }

    /// Shapes pinned to exact block boundaries and one-off each side
    /// (MR = 4, NR = 16, chunk = 32 rows) — the padding/tail paths.
    #[test]
    fn packed_matches_naive_at_boundaries(
        mi in 0usize..6,
        ni in 0usize..6,
        ki in 0usize..4,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        let m = [3, 4, 5, 31, 32, 33][mi];
        let n = [15, 16, 17, 1, 32, 47][ni];
        let k = [1, 4, 16, 33][ki];
        check_against_naive(m, n, k, ta, tb, ab_idx, seed);
    }
}

/// The issue's determinism pin: `set_gemm_threads(1)` and
/// `set_gemm_threads(4)` must produce bitwise-identical C.
#[test]
fn thread_width_is_bitwise_deterministic() {
    // Big enough that width 4 really splits into multiple chunks
    // (> 4 * CHUNK_STRIPS * MR = 128 rows).
    let (m, n, k) = (301, 97, 53);
    let a = fill(11, m, k);
    let b = fill(22, k, n);
    let c0 = fill(33, m, n);

    let mut c1 = c0.clone();
    dense::set_gemm_threads(1);
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.25,
        &a,
        &b,
        -0.5,
        &mut c1,
    );

    let mut c4 = c0.clone();
    dense::set_gemm_threads(4);
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.25,
        &a,
        &b,
        -0.5,
        &mut c4,
    );
    // The cap stays at 4 afterwards; every test in this binary is
    // width-agnostic (that is the property under test).

    let (s1, s4) = (c1.as_slice(), c4.as_slice());
    assert_eq!(s1.len(), s4.len());
    for (i, (x, y)) in s1.iter().zip(s4).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "element {i}: t1 {x:?} ({:#x}) vs t4 {y:?} ({:#x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}
