//! Property tests for the blocked multi-core GEMM against the reference
//! `gemm_naive`, plus the thread-width determinism pins.
//!
//! Shapes are drawn so that m/n/k cross the MR (4) / NR (16) register
//! blocks and — with a pinned tiny KC/MC/NC blocking — the cache-block
//! boundaries of the five-loop kernel (k = KC and KC±1, m < MR, n < NR,
//! single-tile and multi-tile shapes), for both f32 and f64. All four
//! `op(A)`/`op(B)` combinations appear and alpha/beta sweep the edge cases
//! 0, 1, and negative values.
//!
//! The SIMD-dispatch properties pin each available microkernel in turn:
//! geometry-boundary shapes per kernel (around its own mr/nr), the
//! portable-vs-SIMD numerical-equivalence bound (documented at
//! [`fma_divergence_bound`]), and the exact-agreement pin between the two
//! FMA kernels (same summation discipline + pinned blocking ⇒ bitwise
//! identical).

use dense::gemm::GemmOp;
use dense::{gemm, gemm_naive, Blocking, KernelKind, Mat};
use proptest::prelude::*;

/// Deterministic value stream for matrix entries in roughly [-1, 1).
fn fill(seed: u64, rows: usize, cols: usize) -> Mat<f64> {
    let mut state = seed | 1;
    Mat::from_fn(rows, cols, |_, _| {
        // SplitMix64 step.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    })
}

/// f32 variant of [`fill`] (same SplitMix64 stream, narrowed).
fn fill32(seed: u64, rows: usize, cols: usize) -> Mat<f32> {
    let wide = fill(seed, rows, cols);
    Mat::from_fn(rows, cols, |i, j| wide.get(i, j) as f32)
}

/// Pins a small per-thread KC/MC/NC blocking for the duration of a test
/// case; restores the autotuned blocking on drop (also on assert failure,
/// so a failing case cannot leak its blocking into later cases on the same
/// test thread).
struct BlockingPin;
impl BlockingPin {
    fn new(mc: usize, kc: usize, nc: usize) -> Self {
        dense::set_gemm_blocking(Some(Blocking { mc, kc, nc }));
        BlockingPin
    }
}
impl Drop for BlockingPin {
    fn drop(&mut self) {
        dense::set_gemm_blocking(None);
    }
}

/// Pins the dispatched microkernel for the duration of a test case;
/// restores dispatcher selection on drop (also on assert failure).
struct KernelPin;
impl KernelPin {
    fn new(kind: KernelKind) -> Self {
        dense::set_gemm_kernel(Some(kind));
        KernelPin
    }
}
impl Drop for KernelPin {
    fn drop(&mut self) {
        dense::set_gemm_kernel(None);
    }
}

fn op_of(t: bool) -> GemmOp {
    if t {
        GemmOp::Trans
    } else {
        GemmOp::NoTrans
    }
}

/// alpha/beta edge cases per the issue: 0, 1, negative, plus a generic
/// non-trivial pair.
const AB_CASES: [(f64, f64); 5] = [(0.0, 0.0), (1.0, 1.0), (-1.5, 0.0), (0.0, -2.0), (2.5, 0.5)];

fn storage(op: GemmOp, rows: usize, cols: usize) -> (usize, usize) {
    match op {
        GemmOp::NoTrans => (rows, cols),
        GemmOp::Trans => (cols, rows),
    }
}

/// Runs packed `gemm` and `gemm_naive` on the same inputs and compares
/// with a summation-order tolerance scaled by `k`.
fn check_against_naive(m: usize, n: usize, k: usize, ta: bool, tb: bool, ab_idx: usize, seed: u64) {
    let (op_a, op_b) = (op_of(ta), op_of(tb));
    let (alpha, beta) = AB_CASES[ab_idx % AB_CASES.len()];
    let (ar, ac) = storage(op_a, m, k);
    let (br, bc) = storage(op_b, k, n);
    let a = fill(seed ^ 0xA5A5, ar, ac);
    let b = fill(seed ^ 0x5A5A, br, bc);
    let c0 = fill(seed ^ 0xC3C3, m, n);

    let mut c_packed = c0.clone();
    gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_packed);
    let mut c_naive = c0.clone();
    gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c_naive);

    // |entries| <= 1, so the dot products are bounded by k; the two kernels
    // only differ in summation order.
    let tol = 1e-13 * (k.max(1) as f64) + 1e-14;
    for i in 0..m {
        for j in 0..n {
            let (got, want) = (c_packed.get(i, j), c_naive.get(i, j));
            prop_assert!(
                (got - want).abs() <= tol,
                "C[{i}][{j}]: packed {got} vs naive {want} \
                 (m={m} n={n} k={k} ta={ta} tb={tb} alpha={alpha} beta={beta})"
            );
        }
    }
}

/// f32 twin of [`check_against_naive`] with a correspondingly wider
/// summation-order tolerance.
fn check_against_naive_f32(
    m: usize,
    n: usize,
    k: usize,
    ta: bool,
    tb: bool,
    ab_idx: usize,
    seed: u64,
) {
    let (op_a, op_b) = (op_of(ta), op_of(tb));
    let (alpha64, beta64) = AB_CASES[ab_idx % AB_CASES.len()];
    let (alpha, beta) = (alpha64 as f32, beta64 as f32);
    let (ar, ac) = storage(op_a, m, k);
    let (br, bc) = storage(op_b, k, n);
    let a = fill32(seed ^ 0xA5A5, ar, ac);
    let b = fill32(seed ^ 0x5A5A, br, bc);
    let c0 = fill32(seed ^ 0xC3C3, m, n);

    let mut c_packed = c0.clone();
    gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_packed);
    let mut c_naive = c0.clone();
    gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c_naive);

    let tol = 3e-6f32 * (k.max(1) as f32) + 1e-6;
    for i in 0..m {
        for j in 0..n {
            let (got, want) = (c_packed.get(i, j), c_naive.get(i, j));
            prop_assert!(
                (got - want).abs() <= tol,
                "C[{i}][{j}]: packed {got} vs naive {want} \
                 (m={m} n={n} k={k} ta={ta} tb={tb} alpha={alpha} beta={beta})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random shapes crossing the MR/NR/chunk boundaries, all four op
    /// combinations, alpha/beta edge cases.
    #[test]
    fn packed_matches_naive(
        m in 1usize..70,
        n in 1usize..40,
        k in 1usize..48,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        check_against_naive(m, n, k, ta, tb, ab_idx, seed);
    }

    /// Shapes pinned to exact block boundaries and one-off each side
    /// (MR = 4, NR = 16, chunk = 32 rows) — the padding/tail paths.
    #[test]
    fn packed_matches_naive_at_boundaries(
        mi in 0usize..6,
        ni in 0usize..6,
        ki in 0usize..4,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        let m = [3, 4, 5, 31, 32, 33][mi];
        let n = [15, 16, 17, 1, 32, 47][ni];
        let k = [1, 4, 16, 33][ki];
        check_against_naive(m, n, k, ta, tb, ab_idx, seed);
    }

    /// Cache-block boundary cases of the five-loop kernel, with a pinned
    /// tiny blocking (MC = 8, KC = 12, NC = 32): k exactly KC and KC±1
    /// (single vs multiple depth slabs), m < MR and one-off around MC
    /// (single-tile vs multi-tile), n < NR and one-off around NC (single
    /// vs multiple column bands), f64.
    #[test]
    fn blocked_matches_naive_at_cache_boundaries_f64(
        mi in 0usize..6,
        ni in 0usize..6,
        ki in 0usize..6,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        let _pin = BlockingPin::new(8, 12, 32);
        let m = [3, 7, 8, 9, 16, 17][mi];
        let n = [15, 16, 31, 32, 33, 65][ni];
        let k = [1, 11, 12, 13, 24, 25][ki];
        check_against_naive(m, n, k, ta, tb, ab_idx, seed);
    }

    /// Same cache-boundary sweep instantiated at f32.
    #[test]
    fn blocked_matches_naive_at_cache_boundaries_f32(
        mi in 0usize..6,
        ni in 0usize..6,
        ki in 0usize..6,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        let _pin = BlockingPin::new(8, 12, 32);
        let m = [3, 7, 8, 9, 16, 17][mi];
        let n = [15, 16, 31, 32, 33, 65][ni];
        let k = [1, 11, 12, 13, 24, 25][ki];
        check_against_naive_f32(m, n, k, ta, tb, ab_idx, seed);
    }
}

/// Upper bound on the portable-vs-FMA divergence for one output element.
///
/// Under a pinned blocking both kernels consume the operands in the *same*
/// order: per (i, j) the depth loop runs l = 0..k sequentially, KC slab by
/// KC slab, so the two results are the same mathematical expression
/// evaluated under two rounding disciplines — the portable kernel rounds
/// the multiply and the add separately (two roundings per step), the FMA
/// kernels round once per step. Standard forward-error analysis bounds each
/// evaluation within γ_{2k+2}·S of the exact value, where γ_n =
/// n·eps/(1−n·eps) ≈ n·eps and S = |alpha|·Σ_l |a_il|·|b_lj| +
/// |beta·c0_ij|, and the difference between the two evaluations is at most
/// the sum of their individual errors. We assert the conservative form
///
/// ```text
/// |c_simd − c_portable| ≤ 2·(2k+6)·eps·S + 8·eps
/// ```
///
/// (the +6 absorbs the alpha- and beta-scaling steps, the absolute tail
/// covers S ≈ 0). At k = 64 this is ~2⁻⁴⁶·S for f64 — about seven decimal
/// digits tighter than the blanket `1e-13·k` naive-comparison tolerance,
/// which is why the SIMD-vs-portable property asserts this per-element
/// bound instead of reusing [`check_against_naive`].
fn fma_divergence_bound(k: usize, eps: f64, scale: f64) -> f64 {
    2.0 * (2.0 * k as f64 + 6.0) * eps * scale + 8.0 * eps
}

/// Runs the same multiply through the portable kernel and through `kind`
/// under one pinned blocking and asserts the per-element
/// [`fma_divergence_bound`], f64.
fn check_simd_vs_portable(
    kind: KernelKind,
    m: usize,
    n: usize,
    k: usize,
    (ta, tb): (bool, bool),
    ab_idx: usize,
    seed: u64,
) {
    // One blocking for both runs: identical KC slab sequence, so the only
    // difference left is the per-step rounding discipline.
    let _blk = BlockingPin::new(24, 16, 64);
    let (op_a, op_b) = (op_of(ta), op_of(tb));
    let (alpha, beta) = AB_CASES[ab_idx % AB_CASES.len()];
    let (ar, ac) = storage(op_a, m, k);
    let (br, bc) = storage(op_b, k, n);
    let a = fill(seed ^ 0xA5A5, ar, ac);
    let b = fill(seed ^ 0x5A5A, br, bc);
    let c0 = fill(seed ^ 0xC3C3, m, n);

    let mut c_port = c0.clone();
    {
        let _pin = KernelPin::new(KernelKind::Portable);
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_port);
    }
    let mut c_simd = c0.clone();
    {
        let _pin = KernelPin::new(kind);
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_simd);
    }

    // S_ij = |alpha|·Σ_l |a_il|·|b_lj|, via the naive kernel over |A|, |B|.
    let abs_a = Mat::from_fn(ar, ac, |i, j| a.get(i, j).abs());
    let abs_b = Mat::from_fn(br, bc, |i, j| b.get(i, j).abs());
    let mut abs_dot = Mat::from_fn(m, n, |_, _| 0.0f64);
    gemm_naive(op_a, op_b, alpha.abs(), &abs_a, &abs_b, 0.0, &mut abs_dot);

    for i in 0..m {
        for j in 0..n {
            let scale = abs_dot.get(i, j) + (beta * c0.get(i, j)).abs();
            let bound = fma_divergence_bound(k, f64::EPSILON, scale);
            let (got, want) = (c_simd.get(i, j), c_port.get(i, j));
            prop_assert!(
                (got - want).abs() <= bound,
                "C[{i}][{j}]: {} {got} vs portable {want}, |d|={:e} > bound {bound:e} \
                 (m={m} n={n} k={k} ta={ta} tb={tb} alpha={alpha} beta={beta})",
                kind.name(),
                (got - want).abs()
            );
        }
    }
}

/// f32 twin of [`check_simd_vs_portable`].
fn check_simd_vs_portable_f32(
    kind: KernelKind,
    m: usize,
    n: usize,
    k: usize,
    (ta, tb): (bool, bool),
    ab_idx: usize,
    seed: u64,
) {
    let _blk = BlockingPin::new(24, 16, 64);
    let (op_a, op_b) = (op_of(ta), op_of(tb));
    let (alpha64, beta64) = AB_CASES[ab_idx % AB_CASES.len()];
    let (alpha, beta) = (alpha64 as f32, beta64 as f32);
    let (ar, ac) = storage(op_a, m, k);
    let (br, bc) = storage(op_b, k, n);
    let a = fill32(seed ^ 0xA5A5, ar, ac);
    let b = fill32(seed ^ 0x5A5A, br, bc);
    let c0 = fill32(seed ^ 0xC3C3, m, n);

    let mut c_port = c0.clone();
    {
        let _pin = KernelPin::new(KernelKind::Portable);
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_port);
    }
    let mut c_simd = c0.clone();
    {
        let _pin = KernelPin::new(kind);
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_simd);
    }

    let abs_a = Mat::from_fn(ar, ac, |i, j| a.get(i, j).abs());
    let abs_b = Mat::from_fn(br, bc, |i, j| b.get(i, j).abs());
    let mut abs_dot = Mat::from_fn(m, n, |_, _| 0.0f32);
    gemm_naive(op_a, op_b, alpha.abs(), &abs_a, &abs_b, 0.0, &mut abs_dot);

    for i in 0..m {
        for j in 0..n {
            let scale = f64::from(abs_dot.get(i, j)) + f64::from((beta * c0.get(i, j)).abs());
            let bound = fma_divergence_bound(k, f64::from(f32::EPSILON), scale) as f32;
            let (got, want) = (c_simd.get(i, j), c_port.get(i, j));
            prop_assert!(
                (got - want).abs() <= bound,
                "C[{i}][{j}]: {} {got} vs portable {want}, |d|={:e} > bound {bound:e} \
                 (m={m} n={n} k={k} ta={ta} tb={tb} alpha={alpha} beta={beta})",
                kind.name(),
                (got - want).abs()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every available SIMD kernel agrees with the portable kernel to
    /// within the documented FMA rounding-discipline bound
    /// ([`fma_divergence_bound`]), f64. Not bitwise: portable rounds
    /// mul-then-add per step, the SIMD kernels fuse — exact agreement is
    /// instead pinned between the two FMA kernels in
    /// [`fma_kernels_agree_bitwise`].
    #[test]
    fn simd_matches_portable_within_fma_bound_f64(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..64,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        for kind in KernelKind::ALL {
            if kind == KernelKind::Portable || !kind.available() {
                continue;
            }
            check_simd_vs_portable(kind, m, n, k, (ta, tb), ab_idx, seed);
        }
    }

    /// f32 instantiation of the SIMD-vs-portable bound (covers the
    /// wider-MR f32 geometries).
    #[test]
    fn simd_matches_portable_within_fma_bound_f32(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..64,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        for kind in KernelKind::ALL {
            if kind == KernelKind::Portable || !kind.available() {
                continue;
            }
            check_simd_vs_portable_f32(kind, m, n, k, (ta, tb), ab_idx, seed);
        }
    }

    /// MR/NR boundary shapes *per kernel geometry*: each available kernel
    /// is pinned and driven at m ∈ {mr−1, mr, mr+1, 2mr+1},
    /// n ∈ {nr−1, nr, nr+1, 2nr+1} for its own (mr, nr) — the
    /// zero-padded register tails of every geometry, f64.
    #[test]
    fn kernel_geometry_boundaries_f64(
        mi in 0usize..4,
        ni in 0usize..4,
        ki in 0usize..3,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        let k = [1, 7, 33][ki];
        for kind in KernelKind::ALL {
            if !kind.available() {
                continue;
            }
            let (mr, nr) = kind.geom(std::mem::size_of::<f64>());
            let m = [mr - 1, mr, mr + 1, 2 * mr + 1][mi].max(1);
            let n = [nr - 1, nr, nr + 1, 2 * nr + 1][ni].max(1);
            let _pin = KernelPin::new(kind);
            check_against_naive(m, n, k, ta, tb, ab_idx, seed);
        }
    }

    /// f32 instantiation of the per-geometry boundary sweep — the f32
    /// geometries have wider MR (6 on avx2, 12 on avx512), so the shape
    /// sets differ from the f64 ones.
    #[test]
    fn kernel_geometry_boundaries_f32(
        mi in 0usize..4,
        ni in 0usize..4,
        ki in 0usize..3,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        ab_idx in 0usize..5,
        seed in 1u64..u64::MAX,
    ) {
        let k = [1, 7, 33][ki];
        for kind in KernelKind::ALL {
            if !kind.available() {
                continue;
            }
            let (mr, nr) = kind.geom(std::mem::size_of::<f32>());
            let m = [mr - 1, mr, mr + 1, 2 * mr + 1][mi].max(1);
            let n = [nr - 1, nr, nr + 1, 2 * nr + 1][ni].max(1);
            let _pin = KernelPin::new(kind);
            check_against_naive_f32(m, n, k, ta, tb, ab_idx, seed);
        }
    }
}

/// The "exact where the summation discipline matches" half of the
/// equivalence contract: any two available kernels with the same
/// `fused_mul_add()` discipline must produce *bitwise identical* results
/// under a pinned blocking, because both sum l in-order per (i, j) over
/// the same KC slab sequence and round identically at every step. On an
/// AVX-512 host this pins avx2 ≡ avx512 for both element types (despite
/// their different MR/NR register geometries); on narrower hosts the
/// qualifying pair set is empty and the test trivially passes.
#[test]
fn fma_kernels_agree_bitwise() {
    let _blk = BlockingPin::new(24, 16, 64);
    let kernels: Vec<KernelKind> = KernelKind::ALL
        .into_iter()
        .filter(|k| k.available())
        .collect();
    let (m, n, k) = (37, 41, 45);

    let a64 = fill(1010, m, k);
    let at64 = fill(1111, k, m); // stored k×m: used as op(A) = Aᵀ
    let b64 = fill(2020, k, n);
    let c64 = fill(3030, m, n);
    let a32 = fill32(4040, m, k);
    let bt32 = fill32(4141, n, k); // stored n×k: used as op(B) = Bᵀ
    let b32 = fill32(5050, k, n);
    let c32 = fill32(6060, m, n);

    for (xi, &kx) in kernels.iter().enumerate() {
        for &ky in &kernels[xi + 1..] {
            if kx.fused_mul_add() != ky.fused_mul_add() {
                continue;
            }
            let run64 = |kind: KernelKind| {
                let _pin = KernelPin::new(kind);
                let mut c = c64.clone();
                gemm(
                    GemmOp::Trans,
                    GemmOp::NoTrans,
                    1.5,
                    &at64,
                    &b64,
                    -0.25,
                    &mut c,
                );
                gemm(
                    GemmOp::NoTrans,
                    GemmOp::NoTrans,
                    -0.75,
                    &a64,
                    &b64,
                    2.0,
                    &mut c,
                );
                c
            };
            let (cx, cy) = (run64(kx), run64(ky));
            for (i, (x, y)) in cx.as_slice().iter().zip(cy.as_slice()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "f64 element {i}: {} {x:?} vs {} {y:?}",
                    kx.name(),
                    ky.name()
                );
            }

            let run32 = |kind: KernelKind| {
                let _pin = KernelPin::new(kind);
                let mut c = c32.clone();
                gemm(
                    GemmOp::NoTrans,
                    GemmOp::Trans,
                    0.5,
                    &a32,
                    &bt32,
                    1.0,
                    &mut c,
                );
                gemm(
                    GemmOp::NoTrans,
                    GemmOp::NoTrans,
                    1.25,
                    &a32,
                    &b32,
                    -0.5,
                    &mut c,
                );
                c
            };
            let (cx, cy) = (run32(kx), run32(ky));
            for (i, (x, y)) in cx.as_slice().iter().zip(cy.as_slice()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "f32 element {i}: {} {x:?} vs {} {y:?}",
                    kx.name(),
                    ky.name()
                );
            }
        }
    }
}

/// The issue's determinism pin: `set_gemm_threads(1)` and
/// `set_gemm_threads(4)` must produce bitwise-identical C.
#[test]
fn thread_width_is_bitwise_deterministic() {
    // Big enough to clear the parallel flop cutoff and split into several
    // macro-tiles at width 4.
    let (m, n, k) = (301, 97, 53);
    let a = fill(11, m, k);
    let b = fill(22, k, n);
    let c0 = fill(33, m, n);

    let mut c1 = c0.clone();
    dense::set_gemm_threads(1);
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.25,
        &a,
        &b,
        -0.5,
        &mut c1,
    );

    let mut c4 = c0.clone();
    dense::set_gemm_threads(4);
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.25,
        &a,
        &b,
        -0.5,
        &mut c4,
    );
    // The cap stays at 4 afterwards; every test in this binary is
    // width-agnostic (that is the property under test).

    let (s1, s4) = (c1.as_slice(), c4.as_slice());
    assert_eq!(s1.len(), s4.len());
    for (i, (x, y)) in s1.iter().zip(s4).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "element {i}: t1 {x:?} ({:#x}) vs t4 {y:?} ({:#x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// The stronger five-loop determinism pin: with a pinned tiny blocking the
/// shape spans many KC depth slabs, several MC tiles, and two NC column
/// bands — and the result must still be bitwise identical across kernel
/// widths 1, 3, and 4, because the per-element summation order depends
/// only on the KC slab sequence, never on MC/NC or the claim order.
#[test]
fn multi_slab_thread_width_is_bitwise_deterministic() {
    let _pin = BlockingPin::new(16, 8, 32);
    let (m, n, k) = (123, 67, 53); // 7 KC slabs, 8 MC tiles, 3 NC bands
    let a = fill(44, m, k);
    let b = fill(55, n, k); // stored n×k: used as op(B) = Bᵀ below
    let c0 = fill(66, m, n);

    let mut reference: Option<Mat<f64>> = None;
    for width in [1usize, 3, 4] {
        let mut c = c0.clone();
        dense::pool::set_rank_gemm_threads(Some(width));
        gemm(GemmOp::NoTrans, GemmOp::Trans, -0.75, &a, &b, 2.0, &mut c);
        dense::pool::set_rank_gemm_threads(None);
        match &reference {
            None => reference = Some(c),
            Some(r) => {
                for (i, (x, y)) in r.as_slice().iter().zip(c.as_slice()).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "element {i}: width 1 {x:?} vs width {width} {y:?}"
                    );
                }
            }
        }
    }

    // And the f32 instantiation through the same multi-slab path.
    let a = fill32(77, k, m); // stored k×m: used as op(A) = Aᵀ below
    let b = fill32(88, k, n);
    let c0 = fill32(99, m, n);
    let mut reference: Option<Mat<f32>> = None;
    for width in [1usize, 4] {
        let mut c = c0.clone();
        dense::pool::set_rank_gemm_threads(Some(width));
        gemm(GemmOp::Trans, GemmOp::NoTrans, 1.5, &a, &b, 0.0, &mut c);
        dense::pool::set_rank_gemm_threads(None);
        match &reference {
            None => reference = Some(c),
            Some(r) => {
                for (i, (x, y)) in r.as_slice().iter().zip(c.as_slice()).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "element {i}: width 1 {x:?} vs width {width} {y:?}"
                    );
                }
            }
        }
    }
}
