//! A dependency-free JSON value type with a parser and writer.
//!
//! This workspace builds in containers with no crates.io access, so it
//! cannot pull in `serde`/`serde_json`. Everything that needs JSON — the
//! Chrome-trace exporter in `msgpass`, the schedule artifacts in
//! `netmodel`, and the golden-trace tests — goes through this crate
//! instead. The surface is deliberately small: a [`Json`] tree, strict
//! [`Json::parse`], and compact [`Json::to_string`] / pretty
//! [`Json::to_string_pretty`] output.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects preserve no insertion order (they are sorted by key), which keeps
/// output deterministic — important for golden tests.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, sorted by key.
    Obj(BTreeMap<String, Json>),
}

/// Position-annotated parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Two-space-indented rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !members.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }
}

/// Compact single-line rendering (`to_string` comes from this impl).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` on f64 prints the shortest representation that round-trips,
        // and prints integral values without an exponent or trailing ".0"
        // except for the sign of zero.
        if n == n.trunc() && n.abs() < 1e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN/Inf; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired;
                            // nothing in this workspace emits them.
                            let c =
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":{"e":true}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(Json::parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap().as_f64(), Some(-50.0));
        // integral floats print without a fraction
        assert_eq!(Json::Num(1e6).to_string(), "1000000");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        // non-finite numbers degrade to null
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str().unwrap(), "Aé");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[] []",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_error_reports_position() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap().to_string(), "[]");
        assert_eq!(Json::parse("{}").unwrap().to_string(), "{}");
        assert_eq!(Json::parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
